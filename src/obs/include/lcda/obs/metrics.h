#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lcda/util/json_lite.h"

/// lcda::obs — the process-wide observability substrate: a metrics
/// registry (this header), a span tracer (trace.h) and a periodic stats
/// reporter (reporter.h).
///
/// The registry is OFF by default and zero-cost while off:
///
///  - Handles (Counter/Gauge/Histogram) acquired from a disabled registry
///    are inert — their fast paths are inlined null-pointer checks that
///    touch no atomics, take no locks and make no syscalls.
///  - `Registry::instance().enable()` must run before the threads that
///    record metrics start (the CLI enables during flag parsing; workers
///    at process entry). The enabled flag is a plain bool on purpose:
///    checking it on a hot path must not even be an atomic load.
///
/// Everything here is observability-only by contract: counters feed
/// stderr summaries, `--metrics-out` files and the non-reproducible
/// "dist"/"obs" JSON objects — never a byte of a golden trace, a merged
/// manifest entry, or anything else under the engine's byte-identity
/// guarantees.
namespace lcda::obs {

/// Stripe count for hot-path counters: hashes recording threads onto
/// separate cache lines so a parallel engine never serializes on a
/// counter. Power of two (index is masked).
inline constexpr std::size_t kCounterStripes = 16;

/// One cacheline-padded counter cell. alignas rounds sizeof up to the
/// alignment, so an array of cells strides whole cache lines.
struct alignas(64) CounterCell {
  std::atomic<long long> value{0};
};

namespace detail {
/// Small dense per-thread stripe id (assigned on first use, round-robin).
std::size_t assign_stripe() noexcept;
inline std::size_t thread_stripe() noexcept {
  static thread_local const std::size_t stripe = assign_stripe();
  return stripe;
}
}  // namespace detail

/// Monotonic named counter handle. Default-constructed (or acquired from
/// a disabled registry) it is inert; add() is then a single branch.
class Counter {
 public:
  Counter() = default;
  void add(long long n) noexcept {
    if (cells_ == nullptr) return;
    cells_[detail::thread_stripe() & (kCounterStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  /// True when recording actually lands somewhere (registry was enabled
  /// when the handle was acquired). Lets callers skip work that only
  /// feeds the metric (clock reads, size computations).
  [[nodiscard]] bool live() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(CounterCell* cells) noexcept : cells_(cells) {}
  CounterCell* cells_ = nullptr;
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  Gauge() = default;
  void set(long long v) noexcept {
    if (cell_ == nullptr) return;
    cell_->store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] bool live() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<long long>* cell) noexcept : cell_(cell) {}
  std::atomic<long long>* cell_ = nullptr;
};

namespace detail {
/// Histogram storage: fixed inclusive upper bounds plus striped per-bucket
/// cells (bounds.size() + 1 buckets — the last is the overflow bucket)
/// and striped value sums.
struct HistogramCells {
  std::vector<long long> bounds;
  std::vector<CounterCell> cells;  ///< kCounterStripes x (bounds.size()+1)
  std::vector<CounterCell> sums;   ///< kCounterStripes
};
}  // namespace detail

/// Fixed-bucket histogram handle. Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i] (bucket 0: v <= bounds[0]); the final
/// bucket counts v > bounds.back(). observe() is a small binary search
/// plus one relaxed striped increment — and a single branch when inert.
class Histogram {
 public:
  Histogram() = default;
  void observe(long long value) noexcept {
    if (cells_ == nullptr) return;
    const std::vector<long long>& bounds = cells_->bounds;
    std::size_t lo = 0, hi = bounds.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (value <= bounds[mid]) hi = mid;
      else lo = mid + 1;
    }
    const std::size_t stripe =
        detail::thread_stripe() & (kCounterStripes - 1);
    cells_->cells[stripe * (bounds.size() + 1) + lo].value.fetch_add(
        1, std::memory_order_relaxed);
    cells_->sums[stripe].value.fetch_add(value, std::memory_order_relaxed);
  }
  [[nodiscard]] bool live() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCells* cells) noexcept : cells_(cells) {}
  detail::HistogramCells* cells_ = nullptr;
};

/// The default latency bucket edges, in microseconds: a 1-2-5 series from
/// 1us to 10s. Fixed so every process in a study (coordinator + workers)
/// produces mergeable histograms without negotiating bounds.
[[nodiscard]] const std::vector<long long>& default_latency_bounds_us();

/// A folded histogram as it appears in snapshots: bounds plus one count
/// per bucket (bounds.size() + 1, overflow last) and the sum of observed
/// values.
struct HistogramData {
  std::vector<long long> bounds;
  std::vector<long long> counts;
  long long sum = 0;
  [[nodiscard]] long long total_count() const;
};

/// A point-in-time copy of every metric, detached from the registry.
/// Ordered maps make to_json() deterministic for a given value set.
struct MetricsSnapshot {
  std::map<std::string, long long> counters;
  std::map<std::string, long long> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] long long counter(std::string_view name) const;

  /// Fold `other` in: counters and histogram buckets add, gauges take the
  /// max. Associative and commutative (given matching histogram bounds),
  /// so worker snapshots fold into study totals in any order. A histogram
  /// with mismatched bounds is kept as-is and the other side dropped
  /// (warned once) — mixed-binary studies must not abort the merge.
  void merge(const MetricsSnapshot& other);

  /// The change between `base` (earlier) and *this: counters/histograms
  /// subtract, gauges keep the current value. How a resident worker
  /// scopes its process-lifetime registry to a single spec.
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& base) const;

  /// JSON round trip (format "lcda-metrics-v1"). Keys are emitted in
  /// sorted order, so a given value set always serializes the same way.
  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static MetricsSnapshot from_json(const util::Json& j);
};

/// The process-wide metric registry. Metric storage is created on first
/// acquisition and lives for the process (handles never dangle);
/// acquisition takes a mutex and is meant for setup paths, not per-episode
/// code — acquire once, record through the handle.
class Registry {
 public:
  static Registry& instance();

  /// Arms the registry. Call before the threads that will record start;
  /// idempotent. Handles acquired BEFORE enable() stay inert (the
  /// zero-cost contract outlives the call), so enable first, acquire
  /// second.
  void enable();
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  /// Histogram with the default latency bounds (microseconds).
  [[nodiscard]] Histogram histogram(std::string_view name);
  /// Histogram with explicit ascending bounds. A name re-registered with
  /// different bounds keeps the first registration's bounds.
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<long long> bounds);

  /// Copies every metric's current value (sums the stripes).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Test support: zero every value (handles stay valid). Does not
  /// disable.
  void reset_values();

 private:
  Registry() = default;

  struct CounterStripes {
    CounterCell cells[kCounterStripes];
  };

  bool enabled_ = false;  // plain bool: set single-threaded, read hot
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<CounterStripes>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<long long>>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCells>, std::less<>>
      histograms_;
};

/// Cold-path convenience: bump `name` by `n` through a one-shot handle.
/// Costs a registry lock per call — fine once per run/shard, never inside
/// the episode loop.
void add_counter(std::string_view name, long long n);

}  // namespace lcda::obs
