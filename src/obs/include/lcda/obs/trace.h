#pragma once

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lcda/util/json_lite.h"

/// Span tracing: begin/end events in a per-process ring buffer, exported
/// as Chrome trace-event JSON (Perfetto / chrome://tracing loadable).
///
/// Like the metrics registry (metrics.h) the tracer is OFF by default and
/// zero-cost while off: Span construction is a single branch on a plain
/// bool, no atomics, no clock reads. Enabled, a span costs two clock
/// reads (vDSO, not syscalls) and two short critical sections on the ring
/// mutex — which is why instrumentation sits at round/chunk/spec
/// granularity, never per episode.
///
/// Timestamps are wall-clock microseconds (system_clock), so traces
/// exported by different processes of one study (coordinator + workers on
/// the same host) land on a shared timeline and can be merged. Export
/// clamps timestamps non-decreasing per thread and balances begin/end
/// pairs (orphaned ends from overwritten ring entries are dropped,
/// still-open spans are closed), so an exported file always validates.
namespace lcda::obs {

/// One ring entry. The name is captured into a fixed buffer — recording
/// never allocates, and the ring's memory footprint is exact.
struct TraceEvent {
  char name[40] = {};
  char phase = 'B';  ///< 'B' begin / 'E' end
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
};

class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  static SpanTracer& instance();

  /// Arms the tracer with a fixed-capacity ring. Call before the traced
  /// threads start; idempotent (the first capacity wins).
  void enable(std::size_t capacity = kDefaultCapacity);
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Record a begin/end event now. No-ops while disabled. When the ring
  /// is full the oldest event is overwritten and counted in dropped().
  void begin(std::string_view name);
  void end(std::string_view name);

  /// Events overwritten since enable()/clear().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Events currently held in the ring.
  [[nodiscard]] std::size_t size() const;

  /// Drop every buffered event (the resident worker clears between specs
  /// so each exported file covers exactly one spec).
  void clear();

  /// Export the ring as a Chrome trace-event document:
  /// {"traceEvents":[...]} with every event stamped `pid` plus a
  /// process_name metadata record. Per-tid timestamps are clamped
  /// non-decreasing and begin/end pairs balanced (see file comment); the
  /// ring is left untouched.
  [[nodiscard]] util::Json export_chrome(int pid,
                                         std::string_view process_name) const;

 private:
  SpanTracer() = default;
  void record(char phase, std::string_view name);

  bool enabled_ = false;  // plain bool: set single-threaded, read hot
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< oldest event (valid when full_)
  std::size_t count_ = 0;  ///< events held
  std::uint64_t dropped_ = 0;
};

/// RAII span: begin on construction, end on destruction, both through the
/// process tracer. Constructing one while the tracer is disabled is a
/// single branch. The name is copied, so temporaries are safe.
class Span {
 public:
  explicit Span(std::string_view name) {
    SpanTracer& tracer = SpanTracer::instance();
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    const std::size_t n = std::min(name.size(), sizeof(name_) - 1);
    std::memcpy(name_, name.data(), n);
    name_[n] = '\0';
    tracer.begin(std::string_view(name_, n));
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanTracer* tracer_ = nullptr;
  char name_[sizeof(TraceEvent{}.name)] = {};
};

/// Writes `doc` (an export_chrome document) to `path` (pretty-printed,
/// trailing newline). Throws on I/O failure.
void write_trace_file(const util::Json& doc, const std::string& path);

/// Merge support: append every non-metadata event of `doc` (a Chrome
/// trace document) into `events`, rewriting its pid to `pid`, then append
/// a process_name metadata record naming the lane. Tolerates foreign
/// documents missing "traceEvents" (appends nothing).
void append_chrome_events(util::Json& events, const util::Json& doc, int pid,
                          std::string_view process_name);

}  // namespace lcda::obs
