#include "lcda/obs/reporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace lcda::obs {

StatsReporter::StatsReporter(double interval_sec) {
  if (interval_sec <= 0.0) return;
  started_ = true;
  thread_ = std::thread([this, interval_sec] {
    const auto t0 = std::chrono::steady_clock::now();
    const auto interval = std::chrono::duration<double>(interval_sec);
    std::unique_lock lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      heartbeat_line(elapsed);
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    heartbeat_line(elapsed);
  });
}

StatsReporter::~StatsReporter() { stop(); }

void StatsReporter::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::heartbeat_line(double elapsed_sec) const {
  const MetricsSnapshot snap = Registry::instance().snapshot();
  std::string line = "[obs] t=" + std::to_string(elapsed_sec) + "s";
  for (const auto& [name, value] : snap.counters) {
    line += " " + name + "=" + std::to_string(value);
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

void write_metrics_file(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot write metrics file " + path);
  }
  out << snapshot.to_json().dump(2) << "\n";
  if (!out.flush()) {
    throw std::runtime_error("obs: short write to metrics file " + path);
  }
}

}  // namespace lcda::obs
