#include "lcda/llm/parser.h"

#include <cctype>

#include "lcda/util/strings.h"

namespace lcda::llm {

namespace {

/// Extracts bracketed integer pairs "[a,b]" (innermost brackets only).
std::vector<std::pair<long long, long long>> extract_pairs(std::string_view s) {
  std::vector<std::pair<long long, long long>> pairs;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '[') {
      ++i;
      continue;
    }
    const std::size_t close = s.find_first_of("[]", i + 1);
    if (close == std::string_view::npos) break;
    if (s[close] == '[') {
      // Nested bracket: the one at `i` was an outer bracket; descend.
      i = close;
      continue;
    }
    const auto ints = util::extract_ints(s.substr(i + 1, close - i - 1));
    if (ints.size() == 2) pairs.emplace_back(ints[0], ints[1]);
    i = close + 1;
  }
  return pairs;
}

/// Finds the hardware spec after a "hardware" keyword (case-insensitive).
std::optional<cim::HardwareConfig> extract_hardware(std::string_view s,
                                                    const cim::HardwareConfig& base) {
  const std::string lower = util::to_lower(s);
  const std::size_t pos = lower.find("hardware");
  if (pos == std::string::npos) return std::nullopt;
  const std::size_t open = lower.find('[', pos);
  if (open == std::string::npos) return std::nullopt;
  const std::size_t close = lower.find(']', open);
  if (close == std::string::npos) return std::nullopt;
  const std::string_view body = s.substr(open + 1, close - open - 1);

  cim::HardwareConfig hw = base;
  if (util::contains_icase(body, "fefet")) {
    hw.device = cim::DeviceType::kFefet;
  } else if (util::contains_icase(body, "rram")) {
    hw.device = cim::DeviceType::kRram;
  } else if (util::contains_icase(body, "sram")) {
    hw.device = cim::DeviceType::kSram;
  }
  const auto ints = util::extract_ints(body);
  if (ints.size() >= 4) {
    hw.bits_per_cell = static_cast<int>(ints[0]);
    hw.adc_bits = static_cast<int>(ints[1]);
    hw.xbar_size = static_cast<int>(ints[2]);
    hw.col_mux = static_cast<int>(ints[3]);
  }
  return hw;
}

}  // namespace

ParseResult parse_design_response(std::string_view text,
                                  const search::SearchSpace& space) {
  ParseResult result;
  const int layers = space.conv_layers();

  const auto pairs = extract_pairs(text);
  if (static_cast<int>(pairs.size()) < layers) {
    result.error = "expected " + std::to_string(layers) +
                   " [channels,kernel] pairs, found " +
                   std::to_string(pairs.size());
    return result;
  }

  search::Design raw;
  for (int i = 0; i < layers; ++i) {
    nn::ConvSpec spec;
    spec.channels = static_cast<int>(pairs[static_cast<std::size_t>(i)].first);
    spec.kernel = static_cast<int>(pairs[static_cast<std::size_t>(i)].second);
    raw.rollout.push_back(spec);
  }

  // Hardware line is optional; defaults come from the config default ctor.
  if (const auto hw = extract_hardware(text, raw.hw)) {
    raw.hw = *hw;
  }

  const search::Design snapped = space.snap(raw);
  // Count repairs so callers can log how compliant the model was.
  for (std::size_t i = 0; i < snapped.rollout.size(); ++i) {
    if (snapped.rollout[i].channels != raw.rollout[i].channels) ++result.repairs;
    if (snapped.rollout[i].kernel != raw.rollout[i].kernel) ++result.repairs;
  }
  if (snapped.hw != raw.hw) ++result.repairs;

  result.design = snapped;
  result.ok = true;
  return result;
}

}  // namespace lcda::llm
