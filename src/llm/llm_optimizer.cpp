#include "lcda/llm/llm_optimizer.h"

#include <stdexcept>

#include "lcda/util/logging.h"

namespace lcda::llm {

LlmOptimizer::LlmOptimizer(search::SearchSpace space,
                           std::shared_ptr<LlmClient> client, Options opts)
    : space_(std::move(space)),
      client_(std::move(client)),
      opts_(opts),
      builder_(space_, opts.prompt) {
  if (!client_) throw std::invalid_argument("LlmOptimizer: null client");
}

std::string LlmOptimizer::name() const {
  return opts_.prompt.codesign_context ? "LCDA(" + client_->name() + ")"
                                       : "LCDA-naive(" + client_->name() + ")";
}

search::Design LlmOptimizer::propose(util::Rng& rng) {
  const ChatRequest request = builder_.build(history_);
  for (int attempt = 0; attempt <= opts_.max_parse_retries; ++attempt) {
    const ChatResponse response = client_->complete(request);
    const ParseResult parsed = parse_design_response(response.content, space_);
    Exchange ex;
    ex.prompt = request.full_text();
    ex.response = response.content;
    ex.parsed_ok = parsed.ok;
    ex.repairs = parsed.repairs;
    transcript_.push_back(std::move(ex));
    if (parsed.ok) return parsed.design;
    util::Logger("llm").warn()
        << "unparseable LLM response (attempt " << attempt << "): "
        << parsed.error;
  }
  // The model kept misbehaving; keep the loop alive with a random design.
  util::Logger("llm").warn() << "falling back to a random design";
  return space_.sample(rng);
}

void LlmOptimizer::feedback(const search::Observation& obs) {
  HistoryEntry entry;
  entry.design = obs.design;
  entry.performance = obs.reward;
  history_.push_back(std::move(entry));
}

}  // namespace lcda::llm
