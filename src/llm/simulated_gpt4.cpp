#include "lcda/llm/simulated_gpt4.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "lcda/llm/explain.h"
#include "lcda/llm/prompt.h"
#include "lcda/util/strings.h"

namespace lcda::llm {

namespace {

/// Fallback choice lists when the prompt did not carry them (robustness —
/// a real GPT-4 would likewise fall back to plausible values).
const std::vector<int> kDefaultChannels = {16, 24, 32, 48, 64, 96, 128};
const std::vector<int> kDefaultKernels = {1, 3, 5, 7};

template <typename T>
const std::vector<T>& or_default(const std::vector<T>& got,
                                 const std::vector<T>& fallback) {
  return got.empty() ? fallback : got;
}

int nearest_in(int value, const std::vector<int>& choices) {
  int best = choices.front();
  for (int c : choices) {
    if (std::abs(c - value) < std::abs(best - value)) best = c;
  }
  return best;
}

/// Next smaller / larger entry in a sorted-ish choice list.
int step_choice(int value, const std::vector<int>& choices, int direction) {
  std::vector<int> sorted = choices;
  std::sort(sorted.begin(), sorted.end());
  const auto it = std::find(sorted.begin(), sorted.end(), value);
  std::size_t idx =
      it == sorted.end()
          ? static_cast<std::size_t>(
                std::find(sorted.begin(), sorted.end(), nearest_in(value, sorted)) -
                sorted.begin())
          : static_cast<std::size_t>(it - sorted.begin());
  if (direction > 0 && idx + 1 < sorted.size()) ++idx;
  if (direction < 0 && idx > 0) --idx;
  return sorted[idx];
}

/// Enforces the "logical design choices" of Sec. IV-A: non-decreasing
/// channels, at most 4x growth per layer, snapped to the choice list.
void enforce_expert_constraints(std::vector<nn::ConvSpec>& rollout,
                                const std::vector<int>& channels) {
  int prev = 0;
  for (auto& spec : rollout) {
    spec.channels = nearest_in(spec.channels, channels);
    if (prev > 0) {
      if (spec.channels < prev) spec.channels = prev;
      while (spec.channels > 4 * prev) {
        const int smaller = step_choice(spec.channels, channels, -1);
        if (smaller == spec.channels) break;
        spec.channels = smaller;
      }
    }
    prev = spec.channels;
  }
}

std::uint64_t design_key(const search::Design& d) { return d.hash(); }

}  // namespace

SimulatedGpt4::SimulatedGpt4(Options opts) : opts_(opts), rng_(opts.seed) {}

ChatResponse SimulatedGpt4::complete(const ChatRequest& request) {
  const std::string text = request.full_text();
  const PromptFacts facts = read_prompt(text);
  ChatResponse resp;
  if (text.find(kExplainMarker) != std::string::npos) {
    resp.content = explain_change(facts);
    return resp;
  }
  const search::Design design =
      facts.codesign_context ? expert_propose(facts) : generic_propose(facts);
  resp.content = render(design);
  return resp;
}

std::string SimulatedGpt4::explain_change(const PromptFacts& facts) const {
  if (facts.history.size() < 2) {
    return "I cannot explain the change: the prompt did not include both the "
           "previous and the proposed design.";
  }
  const HistoryEntry& prev = facts.history[facts.history.size() - 2];
  const HistoryEntry& cur = facts.history.back();
  const bool latency = facts.objective == Objective::kLatency;

  std::ostringstream os;
  bool any = false;
  const std::size_t layers = std::min(prev.design.rollout.size(),
                                      cur.design.rollout.size());
  for (std::size_t i = 0; i < layers; ++i) {
    const auto& p = prev.design.rollout[i];
    const auto& c = cur.design.rollout[i];
    if (c.channels != p.channels) {
      any = true;
      os << "- layer " << i + 1 << ": " << (c.channels > p.channels ? "widened"
                                                                    : "narrowed")
         << " from " << p.channels << " to " << c.channels << " channels "
         << (c.channels > p.channels
                 ? "to raise accuracy, accepting higher hardware cost"
                 : (latency ? "to shrink the array count so more weight "
                              "replication fits the area budget"
                            : "to cut crossbar and ADC energy"))
         << ".\n";
    }
    if (c.kernel != p.kernel) {
      any = true;
      os << "- layer " << i + 1 << ": kernel " << p.kernel << "x" << p.kernel
         << " -> " << c.kernel << "x" << c.kernel << " because "
         << (c.kernel > p.kernel
                 ? "larger receptive fields usually improve accuracy"
                 : (latency ? "smaller kernels are usually faster"
                            : "smaller kernels reduce the fan-in that device "
                              "variation can corrupt"))
         << ".\n";
    }
  }
  const auto& ph = prev.design.hw;
  const auto& ch = cur.design.hw;
  if (ph.device != ch.device) {
    any = true;
    os << "- switched the cell technology from " << cim::device_name(ph.device)
       << " to " << cim::device_name(ch.device)
       << " to trade read energy against programming variation.\n";
  }
  if (ph.bits_per_cell != ch.bits_per_cell) {
    any = true;
    os << "- bits per cell " << ph.bits_per_cell << " -> " << ch.bits_per_cell
       << ": denser storage needs fewer arrays but is harder to program "
          "precisely.\n";
  }
  if (ph.adc_bits != ch.adc_bits) {
    any = true;
    os << "- ADC resolution " << ph.adc_bits << " -> " << ch.adc_bits << " bits: "
       << (ch.adc_bits < ph.adc_bits
               ? "lower resolution converts faster and cheaper, at some "
                 "partial-sum precision loss"
               : "higher resolution avoids clipping the column sums")
       << ".\n";
  }
  if (ph.xbar_size != ch.xbar_size) {
    any = true;
    os << "- crossbar size " << ph.xbar_size << " -> " << ch.xbar_size
       << " to rebalance array count against per-array utilization.\n";
  }
  if (ph.col_mux != ch.col_mux) {
    any = true;
    os << "- column mux " << ph.col_mux << ":1 -> " << ch.col_mux
       << ":1, trading ADC count (area) against serialized conversions "
          "(latency).\n";
  }
  if (!any) {
    return "The proposed design is identical to the previous one; I "
           "re-suggested it because every nearby alternative was already "
           "explored.";
  }
  os << "Previous performance was " << prev.performance
     << "; I expect these changes to improve the combined "
     << (latency ? "latency" : "energy") << "/accuracy score.";
  return os.str();
}

search::Design SimulatedGpt4::expert_propose(const PromptFacts& facts) {
  const auto& channels = or_default(facts.channel_choices, kDefaultChannels);
  const auto& kernels = or_default(facts.kernel_choices, kDefaultKernels);
  // Expert kernels: GPT-4 avoids 1x1 backbones ("always maintaining logical
  // design choices"); it works with conventional 3/5/7 kernels.
  std::vector<int> expert_kernels;
  for (int k : kernels) {
    if (k >= 3) expert_kernels.push_back(k);
  }
  if (expert_kernels.empty()) expert_kernels = kernels;
  const int layers = facts.conv_layers;

  std::unordered_set<std::uint64_t> seen;
  for (const auto& h : facts.history) seen.insert(design_key(h.design));

  // --- Episode 0: pretrained knowledge, no cold start -------------------
  if (facts.history.empty()) {
    search::Design d;
    // A published-style progressive widening: start at a moderate width and
    // double every two layers, all 3x3.
    const int start = channels[rng_.index(std::min<std::size_t>(3, channels.size()))];
    int prev = 0;
    for (int i = 0; i < layers; ++i) {
      nn::ConvSpec spec;
      const double scale = static_cast<double>(1 << (i / 2));
      spec.channels = nearest_in(static_cast<int>(start * scale), channels);
      if (prev > 0 && spec.channels < prev) spec.channels = prev;
      spec.kernel = 3;
      d.rollout.push_back(spec);
      prev = spec.channels;
    }
    enforce_expert_constraints(d.rollout, channels);
    // Standard hardware point: 2-bit cells on a 128-crossbar with a
    // mid-resolution ADC is the textbook CiM operating point.
    if (!facts.device_choices.empty()) d.hw.device = facts.device_choices.front();
    if (!facts.bits_per_cell_choices.empty()) {
      d.hw.bits_per_cell = nearest_in(2, facts.bits_per_cell_choices);
    }
    if (!facts.adc_bits_choices.empty()) {
      d.hw.adc_bits = nearest_in(6, facts.adc_bits_choices);
    }
    if (!facts.xbar_choices.empty()) {
      d.hw.xbar_size = nearest_in(128, facts.xbar_choices);
    }
    if (!facts.mux_choices.empty()) d.hw.col_mux = nearest_in(8, facts.mux_choices);
    return d;
  }

  // --- Later episodes: exploit the history ------------------------------
  const HistoryEntry* best = &facts.history.front();
  for (const auto& h : facts.history) {
    if (h.performance > best->performance) best = &h;
  }
  const bool last_invalid = facts.history.back().performance <= -1.0;

  for (int attempt = 0; attempt < 24; ++attempt) {
    search::Design d = best->design;
    if (static_cast<int>(d.rollout.size()) != layers) {
      d.rollout.resize(static_cast<std::size_t>(layers), {32, 3});
    }

    if (last_invalid) {
      // Area blew up: the expert reasons about area and shrinks the design.
      for (auto& spec : d.rollout) {
        spec.channels = step_choice(spec.channels, channels, -1);
      }
      if (!facts.xbar_choices.empty()) {
        d.hw.xbar_size = step_choice(d.hw.xbar_size, facts.xbar_choices, +1);
      }
    } else if (!opts_.wrong_cim_kernel_priors &&
               facts.objective == Objective::kLatency) {
      // "Fine-tuned" expert (paper Sec. IV-B future work): it has learned
      // that on CiM hardware kernel size is NOT the latency lever — array
      // count and hardware knobs are — and that large kernels amplify
      // device variation. It therefore pins kernels at 3 and works the
      // channel widths and hardware configuration instead.
      const double roll = rng_.uniform();
      for (auto& spec : d.rollout) {
        spec.kernel = nearest_in(3, expert_kernels);
      }
      if (roll < 0.40) {
        const int dir = rng_.chance(0.6) ? -1 : +1;  // smaller nets replicate
        for (auto& spec : d.rollout) {
          spec.channels = step_choice(spec.channels, channels, dir);
        }
      } else if (roll < 0.60) {
        const std::size_t i = rng_.index(d.rollout.size());
        d.rollout[i].channels = step_choice(d.rollout[i].channels, channels,
                                            rng_.chance(0.5) ? +1 : -1);
      } else if (roll < 0.80 && !facts.adc_bits_choices.empty()) {
        // Lower-resolution ADCs convert faster (SAR cycles scale with bits).
        d.hw.adc_bits = step_choice(d.hw.adc_bits, facts.adc_bits_choices, -1);
      } else if (!facts.mux_choices.empty() && rng_.chance(0.5)) {
        // Less column muxing = fewer serialized conversions per read.
        d.hw.col_mux = step_choice(d.hw.col_mux, facts.mux_choices, -1);
      } else if (!facts.bits_per_cell_choices.empty()) {
        // Denser cells shrink the array count, freeing area for replication.
        d.hw.bits_per_cell =
            step_choice(d.hw.bits_per_cell, facts.bits_per_cell_choices, +1);
      }
    } else {
      const double roll = rng_.uniform();
      const bool latency_objective = facts.objective == Objective::kLatency;

      if (latency_objective && opts_.wrong_cim_kernel_priors && roll < 0.55) {
        // Sec. IV-B misconception #2: "smaller kernels mean lower latency".
        // GPT-4 keeps shrinking kernels chasing FPS.
        const std::size_t i = rng_.index(d.rollout.size());
        d.rollout[i].kernel = step_choice(d.rollout[i].kernel, expert_kernels, -1);
      } else if (latency_objective && opts_.wrong_cim_kernel_priors &&
                 roll < 0.80) {
        // Sec. IV-B misconception #1: "larger kernels mean higher accuracy".
        // When the score stalls, it enlarges kernels instead.
        const std::size_t i = rng_.index(d.rollout.size());
        d.rollout[i].kernel = step_choice(d.rollout[i].kernel, expert_kernels, +1);
      } else if (roll < 0.45) {
        // Channel spectrum exploration: scale the whole network up or down
        // one notch — high-accuracy designs across the energy range.
        const int dir = rng_.chance(0.5) ? +1 : -1;
        for (auto& spec : d.rollout) {
          spec.channels = step_choice(spec.channels, channels, dir);
        }
      } else if (roll < 0.70) {
        // Local width move on one of the later layers.
        const std::size_t i = rng_.index(d.rollout.size());
        const int dir = rng_.chance(0.6) ? +1 : -1;
        d.rollout[i].channels = step_choice(d.rollout[i].channels, channels, dir);
      } else if (roll < 0.80 && !latency_objective) {
        // Mild kernel exploration under the energy objective (3 <-> 5).
        const std::size_t i = rng_.index(d.rollout.size());
        const int dir = rng_.chance(0.5) ? +1 : -1;
        const int next = step_choice(d.rollout[i].kernel, expert_kernels, dir);
        d.rollout[i].kernel = std::min(next, 5);
      } else {
        // Hardware neighborhood move on one knob.
        switch (rng_.index(4)) {
          case 0:
            if (!facts.adc_bits_choices.empty()) {
              d.hw.adc_bits = step_choice(d.hw.adc_bits, facts.adc_bits_choices,
                                          rng_.chance(0.5) ? +1 : -1);
            }
            break;
          case 1:
            if (!facts.xbar_choices.empty()) {
              d.hw.xbar_size = step_choice(d.hw.xbar_size, facts.xbar_choices,
                                           rng_.chance(0.5) ? +1 : -1);
            }
            break;
          case 2:
            if (!facts.device_choices.empty()) {
              d.hw.device =
                  facts.device_choices[rng_.index(facts.device_choices.size())];
            }
            break;
          default:
            if (!facts.bits_per_cell_choices.empty()) {
              d.hw.bits_per_cell =
                  step_choice(d.hw.bits_per_cell, facts.bits_per_cell_choices,
                              rng_.chance(0.5) ? +1 : -1);
            }
            break;
        }
      }
    }

    enforce_expert_constraints(d.rollout, channels);
    if (!seen.contains(design_key(d))) return d;
  }
  // Every neighbor tried was already explored; re-suggest the best design
  // scaled down a notch (still expert-legal).
  search::Design d = best->design;
  for (auto& spec : d.rollout) {
    spec.channels = step_choice(spec.channels, channels, -1);
  }
  enforce_expert_constraints(d.rollout, channels);
  return d;
}

search::Design SimulatedGpt4::generic_propose(const PromptFacts& facts) {
  const auto& channels = or_default(facts.channel_choices, kDefaultChannels);
  const auto& kernels = or_default(facts.kernel_choices, kDefaultKernels);
  const int layers = facts.conv_layers;

  search::Design d;
  const double mode = rng_.uniform();
  if (mode < 0.30) {
    // Generic numeric prior: bigger numbers must score more.
    for (int i = 0; i < layers; ++i) {
      d.rollout.push_back({channels.back(), kernels.back()});
    }
  } else if (mode < 0.55 && !facts.history.empty()) {
    // Tweak the best-scoring previous list without understanding it.
    const HistoryEntry* best = &facts.history.front();
    for (const auto& h : facts.history) {
      if (h.performance > best->performance) best = &h;
    }
    d = best->design;
    d.rollout.resize(static_cast<std::size_t>(layers), {32, 3});
    const std::size_t i = rng_.index(d.rollout.size());
    d.rollout[i].channels = channels[rng_.index(channels.size())];
    d.rollout[i].kernel = kernels[rng_.index(kernels.size())];
  } else {
    // Unconstrained random walk: decreasing widths, (1,7)-style kernel
    // mixes — exactly the "unreasonable" candidates the expert avoids.
    for (int i = 0; i < layers; ++i) {
      d.rollout.push_back({channels[rng_.index(channels.size())],
                           kernels[rng_.index(kernels.size())]});
    }
  }
  if (!facts.device_choices.empty()) {
    d.hw.device = facts.device_choices[rng_.index(facts.device_choices.size())];
  }
  if (!facts.bits_per_cell_choices.empty()) {
    d.hw.bits_per_cell =
        facts.bits_per_cell_choices[rng_.index(facts.bits_per_cell_choices.size())];
  }
  if (!facts.adc_bits_choices.empty()) {
    d.hw.adc_bits = facts.adc_bits_choices[rng_.index(facts.adc_bits_choices.size())];
  }
  if (!facts.xbar_choices.empty()) {
    d.hw.xbar_size = facts.xbar_choices[rng_.index(facts.xbar_choices.size())];
  }
  if (!facts.mux_choices.empty()) {
    d.hw.col_mux = facts.mux_choices[rng_.index(facts.mux_choices.size())];
  }
  return d;
}

std::string SimulatedGpt4::render(const search::Design& design) {
  std::ostringstream os;
  if (rng_.chance(opts_.chatter_probability)) {
    os << "Based on the experimental results provided, I suggest the "
          "following design:\n";
  }
  if (rng_.chance(opts_.format_noise_probability)) {
    // Sloppy spacing variant.
    os << "[ ";
    for (std::size_t i = 0; i < design.rollout.size(); ++i) {
      if (i) os << ", ";
      os << "[ " << design.rollout[i].channels << ", " << design.rollout[i].kernel
         << " ]";
    }
    os << " ]";
  } else {
    os << design.rollout_text();
  }
  os << '\n' << "hardware=" << PromptBuilder::hardware_text(design.hw) << '\n';
  return os.str();
}

}  // namespace lcda::llm
