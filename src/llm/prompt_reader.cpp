#include "lcda/llm/prompt_reader.h"

#include "lcda/util/strings.h"

namespace lcda::llm {

namespace {

/// Extracts the integer list between the first '{' after `key` and the
/// matching '}'.
std::vector<int> braced_ints_after(std::string_view text, std::string_view key) {
  std::vector<int> out;
  const std::string lower = util::to_lower(text);
  const std::string lkey = util::to_lower(key);
  const std::size_t pos = lower.find(lkey);
  if (pos == std::string::npos) return out;
  const std::size_t open = text.find('{', pos);
  if (open == std::string::npos) return out;
  const std::size_t close = text.find('}', open);
  if (close == std::string::npos) return out;
  for (long long v : util::extract_ints(text.substr(open + 1, close - open - 1))) {
    out.push_back(static_cast<int>(v));
  }
  return out;
}

std::vector<cim::DeviceType> devices_after(std::string_view text,
                                           std::string_view key) {
  std::vector<cim::DeviceType> out;
  const std::string lower = util::to_lower(text);
  const std::size_t pos = lower.find(util::to_lower(key));
  if (pos == std::string::npos) return out;
  const std::size_t open = lower.find('{', pos);
  const std::size_t close = open == std::string::npos ? std::string::npos
                                                      : lower.find('}', open);
  if (close == std::string::npos) return out;
  const std::string_view body =
      std::string_view(lower).substr(open + 1, close - open - 1);
  if (body.find("rram") != std::string_view::npos) {
    out.push_back(cim::DeviceType::kRram);
  }
  if (body.find("fefet") != std::string_view::npos) {
    out.push_back(cim::DeviceType::kFefet);
  }
  if (body.find("sram") != std::string_view::npos) {
    out.push_back(cim::DeviceType::kSram);
  }
  return out;
}

/// Parses one "rollout=... hardware=... performance=..." history line.
bool parse_history_line(std::string_view line, HistoryEntry& out) {
  const std::size_t rpos = line.find("rollout=");
  const std::size_t ppos = line.find("performance=");
  if (rpos == std::string_view::npos || ppos == std::string_view::npos) {
    return false;
  }
  // Rollout pairs between "rollout=" and "hardware=" (or "performance=").
  const std::size_t hpos = line.find("hardware=");
  const std::size_t rollout_end = hpos != std::string_view::npos ? hpos : ppos;
  const auto ints =
      util::extract_ints(line.substr(rpos + 8, rollout_end - (rpos + 8)));
  if (ints.size() < 2 || ints.size() % 2 != 0) return false;
  out.design.rollout.clear();
  for (std::size_t i = 0; i + 1 < ints.size(); i += 2) {
    nn::ConvSpec spec;
    spec.channels = static_cast<int>(ints[i]);
    spec.kernel = static_cast<int>(ints[i + 1]);
    out.design.rollout.push_back(spec);
  }
  if (hpos != std::string_view::npos) {
    const std::string_view hw_part = line.substr(hpos, ppos - hpos);
    if (util::contains_icase(hw_part, "fefet")) {
      out.design.hw.device = cim::DeviceType::kFefet;
    } else if (util::contains_icase(hw_part, "sram")) {
      out.design.hw.device = cim::DeviceType::kSram;
    } else {
      out.design.hw.device = cim::DeviceType::kRram;
    }
    const auto hw_ints = util::extract_ints(hw_part);
    if (hw_ints.size() >= 4) {
      out.design.hw.bits_per_cell = static_cast<int>(hw_ints[0]);
      out.design.hw.adc_bits = static_cast<int>(hw_ints[1]);
      out.design.hw.xbar_size = static_cast<int>(hw_ints[2]);
      out.design.hw.col_mux = static_cast<int>(hw_ints[3]);
    }
  }
  const auto perf = util::parse_double(util::trim(line.substr(ppos + 12)));
  if (!perf) return false;
  out.performance = *perf;
  return true;
}

}  // namespace

PromptFacts read_prompt(std::string_view text) {
  PromptFacts facts;

  facts.codesign_context =
      util::contains_icase(text, "neural architecture search") ||
      util::contains_icase(text, "model architecture");
  if (util::contains_icase(text, "inference latency")) {
    facts.objective = Objective::kLatency;
  } else {
    facts.objective = Objective::kEnergy;
  }

  facts.channel_choices = braced_ints_after(text, "channels per layer:");
  facts.kernel_choices = braced_ints_after(text, "kernel sizes:");
  facts.device_choices = devices_after(text, "device in");
  facts.bits_per_cell_choices = braced_ints_after(text, "bits_per_cell in");
  facts.adc_bits_choices = braced_ints_after(text, "adc_bits in");
  facts.xbar_choices = braced_ints_after(text, "xbar_size in");
  facts.mux_choices = braced_ints_after(text, "col_mux in");

  // "...rollout list consisting of N number pairs" (expert prompt) or
  // "...list of N number pairs" (naive prompt): the integer directly
  // preceding the "number pairs" marker.
  const std::size_t pairs_marker = text.find(" number pairs");
  if (pairs_marker != std::string_view::npos) {
    const std::size_t window = std::min<std::size_t>(pairs_marker, 24);
    const auto ints =
        util::extract_ints(text.substr(pairs_marker - window, window));
    if (!ints.empty() && ints.back() > 0 && ints.back() <= 32) {
      facts.conv_layers = static_cast<int>(ints.back());
    }
  }

  for (const std::string& line : util::split(text, '\n')) {
    HistoryEntry entry;
    if (parse_history_line(line, entry)) facts.history.push_back(std::move(entry));
  }
  return facts;
}

}  // namespace lcda::llm
