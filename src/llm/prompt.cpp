#include "lcda/llm/prompt.h"

#include <sstream>
#include <stdexcept>

namespace lcda::llm {

std::string ChatRequest::full_text() const {
  std::string out;
  for (const auto& m : messages) {
    out += m.content;
    out += '\n';
  }
  return out;
}

std::string_view objective_name(Objective o) {
  switch (o) {
    case Objective::kEnergy: return "energy";
    case Objective::kLatency: return "latency";
  }
  return "?";
}

Objective objective_from_name(std::string_view name) {
  if (name == "energy") return Objective::kEnergy;
  if (name == "latency") return Objective::kLatency;
  throw std::invalid_argument("objective_from_name: unknown objective \"" +
                              std::string(name) + "\"");
}

PromptBuilder::PromptBuilder(search::SearchSpace space, Options opts)
    : space_(std::move(space)), opts_(opts) {}

std::string PromptBuilder::example_rollout() const {
  // Progressive widening from 32, doubling every two layers, all 3x3 —
  // snapped onto the space so the example only shows legal values (an LLM
  // imitates its example; an 8-layer space must not show a 6-pair one).
  search::Design example;
  for (int i = 0; i < space_.conv_layers(); ++i) {
    example.rollout.push_back({32 << (i / 2), 3});
  }
  return space_.snap(example).rollout_text();
}

std::string PromptBuilder::hardware_text(const cim::HardwareConfig& hw) {
  std::ostringstream os;
  os << '[' << cim::device_name(hw.device) << ',' << hw.bits_per_cell << ','
     << hw.adc_bits << ',' << hw.xbar_size << ',' << hw.col_mux << ']';
  return os.str();
}

std::string PromptBuilder::history_line(const HistoryEntry& entry) {
  std::ostringstream os;
  os << "rollout=" << entry.design.rollout_text()
     << " hardware=" << hardware_text(entry.design.hw)
     << " performance=" << entry.performance;
  return os.str();
}

ChatRequest PromptBuilder::build(const std::vector<HistoryEntry>& history) const {
  ChatRequest req;

  // prompt_s of Algorithm 1.
  ChatMessage system;
  system.role = ChatMessage::Role::kSystem;
  system.content = opts_.codesign_context
                       ? "You are an expert in the field of neural architecture "
                         "search."
                       : "You are a helpful assistant.";
  req.messages.push_back(std::move(system));

  // prompt_u of Algorithm 1.
  std::ostringstream os;
  if (opts_.codesign_context) {
    os << "Your task is to assist me in selecting the best rollout numbers "
          "for a given model architecture. The model will be trained and "
          "tested on CIFAR10, and your objective will be to maximize the "
          "model's performance on CIFAR10.\n";
    os << "The model architecture will be defined as the following.\n"
       << space_.model_text() << "\n";
    os << "For the 'rollout' variable to design the model, the available "
          "number for each index would be: "
       << space_.choices_text() << "\n";
    os << "Your objective is to define the optimal number of rollouts for "
          "each layer based on the given options above to maximize the "
          "model's performance on CIFAR10.\n";
    os << "The model's performance is a combination of hardware performance "
          "and model accuracy. The hardware metric for this study is ";
    os << (opts_.objective == Objective::kEnergy
               ? "the energy consumption during inference on a "
                 "compute-in-memory DNN accelerator"
               : "the inference latency on a compute-in-memory DNN "
                 "accelerator");
    os << ". If the hardware is invalid (e.g., too large in area), the "
          "performance I give you will be -1. After you give me a rollout "
          "list, I will give you the model's performance I calculated.\n";
    os << "Your response should be the rollout list consisting of "
       << space_.conv_layers() << " number pairs (e.g. " << example_rollout()
       << ") followed on the next line by the hardware configuration "
          "hardware=[device,bits_per_cell,adc_bits,xbar_size,col_mux] "
          "(e.g. hardware=[RRAM,2,6,128,8]).\n";
  } else {
    // LCDA-naive: same decision problem with all domain context removed.
    os << "I am running a black-box optimization. Select one list of "
       << space_.conv_layers()
       << " number pairs and one list of settings to maximize a score I will "
          "compute.\n";
    os << "The available numbers for each pair are: " << space_.choices_text()
       << "\n";
    os << "If the settings are invalid the score will be -1. After you give "
          "me a list, I will tell you the score.\n";
    os << "Your response should be the list of " << space_.conv_layers()
       << " number pairs (e.g. " << example_rollout()
       << ") followed on the next line by hardware=[device,bits_per_cell,"
          "adc_bits,xbar_size,col_mux] (e.g. hardware=[RRAM,2,6,128,8]).\n";
  }

  if (!history.empty()) {
    os << "Here are some experimental results that you can use as a "
          "reference:\n";
    const std::size_t start =
        history.size() > opts_.max_history ? history.size() - opts_.max_history : 0;
    for (std::size_t i = start; i < history.size(); ++i) {
      os << history_line(history[i]) << "\n";
    }
  }

  os << "Please suggest a rollout list that can improve the model's "
        "performance beyond the experimental results provided above. Please "
        "do not include anything else other than the rollout list and the "
        "hardware configuration in your response.";

  ChatMessage user;
  user.role = ChatMessage::Role::kUser;
  user.content = os.str();
  req.messages.push_back(std::move(user));
  return req;
}

}  // namespace lcda::llm
