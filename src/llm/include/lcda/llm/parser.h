#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "lcda/search/design.h"
#include "lcda/search/space.h"

namespace lcda::llm {

/// Outcome of parsing one LLM response into a Design.
struct ParseResult {
  bool ok = false;
  search::Design design;
  std::string error;

  /// Number of values that had to be snapped to the nearest legal choice
  /// (0 when the response was exactly in-space).
  int repairs = 0;
};

/// Parses the design generator's input: the LLM's free-text answer
/// (paper Sec. III-B, following GENIUS' output handling).
///
/// Tolerates chatter around the payload. Recognizes:
///  * the rollout as the first `conv_layers` bracketed integer pairs
///    ("[[32,3],[32,3],...]" in any spacing);
///  * the hardware as "hardware=[DEV,b,adc,xbar,mux]" (device by name,
///    case-insensitive) — optional; defaults are used when missing;
///  * out-of-space values, which are snapped to the nearest legal choice
///    and counted in `repairs`.
/// Fails (ok=false) when fewer than `conv_layers` pairs can be recovered.
[[nodiscard]] ParseResult parse_design_response(std::string_view text,
                                                const search::SearchSpace& space);

}  // namespace lcda::llm
