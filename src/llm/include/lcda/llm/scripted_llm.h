#pragma once

#include <deque>
#include <string>
#include <vector>

#include "lcda/llm/client.h"

namespace lcda::llm {

/// Test double: replays a fixed sequence of responses and records every
/// request it received.
class ScriptedLlm final : public LlmClient {
 public:
  explicit ScriptedLlm(std::vector<std::string> responses);

  /// Returns the next scripted response; when the script is exhausted the
  /// last response is repeated (an empty script yields empty responses).
  [[nodiscard]] ChatResponse complete(const ChatRequest& request) override;
  [[nodiscard]] std::string name() const override { return "Scripted"; }

  [[nodiscard]] const std::vector<ChatRequest>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t calls() const { return requests_.size(); }

 private:
  std::vector<std::string> responses_;
  std::size_t cursor_ = 0;
  std::vector<ChatRequest> requests_;
};

}  // namespace lcda::llm
