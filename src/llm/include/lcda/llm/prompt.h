#pragma once

#include <string>
#include <vector>

#include "lcda/llm/client.h"
#include "lcda/search/design.h"
#include "lcda/search/space.h"

namespace lcda::llm {

/// The hardware metric the co-design experiment trades accuracy against.
enum class Objective { kEnergy, kLatency };

[[nodiscard]] std::string_view objective_name(Objective o);

/// Inverse of objective_name ("energy" / "latency"); throws
/// std::invalid_argument on anything else. Used by scenario deserialization.
[[nodiscard]] Objective objective_from_name(std::string_view name);

/// One explored (design, normalized performance) pair — the paper's
/// (l_des, l_perf) lists fed back into every prompt.
struct HistoryEntry {
  search::Design design;
  double performance = 0.0;
};

/// Builds the GPT prompt of Algorithm 1.
///
/// The template follows the paper verbatim where it is spelled out (system
/// role line, task framing, rollout response format, the "-1 if the
/// hardware is invalid" rule, the request not to include anything but the
/// design). Two documented extensions:
///   * an explicit objective sentence naming the hardware metric (the paper
///     runs separate energy and latency experiments but prints only the
///     energy prompt);
///   * a hardware line in the response format, since the co-design space
///     includes the five NACIM hardware knobs alongside the rollout.
class PromptBuilder {
 public:
  struct Options {
    Objective objective = Objective::kEnergy;
    /// When false, emits the LCDA-naive prompt (paper Sec. IV-C): the same
    /// choices and history but stripped of every mention of neural
    /// architecture search, DNNs, accelerators and hardware — the model is
    /// just asked to pick numbers that maximize a score.
    bool codesign_context = true;
    /// Cap on history entries included (newest kept); prompts stay bounded.
    std::size_t max_history = 64;
  };

  PromptBuilder(search::SearchSpace space, Options opts);

  /// Algorithm 1: GPT-Prompts(l_des, l_perf, Model, Choices).
  [[nodiscard]] ChatRequest build(const std::vector<HistoryEntry>& history) const;

  /// The strict one-line grammar used for history entries, also consumed by
  /// prompt_reader:  "rollout=[[c,k],...] hardware=[DEV,b,adc,xbar,mux]
  /// performance=p".
  [[nodiscard]] static std::string history_line(const HistoryEntry& entry);

  /// Hardware bracket text for a design: "[RRAM,2,6,128,8]".
  [[nodiscard]] static std::string hardware_text(const cim::HardwareConfig& hw);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] const search::SearchSpace& space() const { return space_; }

 private:
  /// A legal example rollout for the response-format instruction, matching
  /// the space's layer count and choice lists (the published VGG-style
  /// progression, snapped to the space): "[[32,3],[32,3],[64,3],...]".
  [[nodiscard]] std::string example_rollout() const;

  search::SearchSpace space_;
  Options opts_;
};

}  // namespace lcda::llm
