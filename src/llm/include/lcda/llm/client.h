#pragma once

#include <string>
#include <vector>

namespace lcda::llm {

/// One chat turn.
struct ChatMessage {
  enum class Role { kSystem, kUser, kAssistant };
  Role role = Role::kUser;
  std::string content;
};

struct ChatRequest {
  std::vector<ChatMessage> messages;

  /// Concatenated text of all messages (what prompt-driven simulators read).
  [[nodiscard]] std::string full_text() const;
};

struct ChatResponse {
  std::string content;
};

/// Abstract LLM endpoint (paper: GPT-4 behind an API).
///
/// This reproduction has no network access, so production use runs against
/// SimulatedGpt4 — a deterministic stand-in that consumes the real prompt
/// text (see DESIGN.md substitution #1). The interface matches what a thin
/// HTTPS client would expose, so a real backend can be swapped in.
class LlmClient {
 public:
  virtual ~LlmClient() = default;

  /// Completes a chat exchange. Implementations may throw LlmError on
  /// unrecoverable transport problems; the optimizer retries.
  [[nodiscard]] virtual ChatResponse complete(const ChatRequest& request) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lcda::llm
