#pragma once

#include <string_view>
#include <vector>

#include "lcda/llm/prompt.h"
#include "lcda/search/design.h"
#include "lcda/search/space.h"

namespace lcda::llm {

/// Everything a prompt-driven model can recover from the Algorithm-1 prompt
/// text. SimulatedGpt4 *only* sees the prompt — exactly like the real GPT-4
/// — so all task knowledge must round-trip through this reader. That keeps
/// the prompt format honest: if PromptBuilder stopped emitting something,
/// the simulated optimizer would genuinely lose that information.
struct PromptFacts {
  /// True when the prompt frames the task as NAS / SW-HW co-design (the
  /// LCDA-naive ablation strips this framing).
  bool codesign_context = false;

  /// Which hardware metric the prompt names (energy when unspecified).
  Objective objective = Objective::kEnergy;

  /// Channel / kernel choices recovered from the choices line.
  std::vector<int> channel_choices;
  std::vector<int> kernel_choices;

  /// Hardware knob choices recovered from the choices line.
  std::vector<cim::DeviceType> device_choices;
  std::vector<int> bits_per_cell_choices;
  std::vector<int> adc_bits_choices;
  std::vector<int> xbar_choices;
  std::vector<int> mux_choices;

  /// Conv layer count implied by the response-format sentence (default 6).
  int conv_layers = 6;

  /// The (design, performance) history, oldest first.
  std::vector<HistoryEntry> history;
};

/// Parses a full prompt (system + user text). Never throws; missing pieces
/// are left at defaults.
[[nodiscard]] PromptFacts read_prompt(std::string_view prompt_text);

}  // namespace lcda::llm
