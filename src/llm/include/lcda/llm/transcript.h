#pragma once

#include <ostream>

#include "lcda/llm/llm_optimizer.h"

namespace lcda::llm {

/// Renders an optimizer's prompt/response exchanges as markdown — the
/// artifact behind the paper's explainability pitch: the whole search is a
/// human-readable dialogue that can be archived and audited.
///
/// Format: one section per exchange with the prompt in a quoted block and
/// the model's reply in a code fence, plus parse diagnostics.
void write_transcript_markdown(std::ostream& os, const LlmOptimizer& optimizer,
                               std::string_view title = "LCDA search transcript");

/// One-exchange variant (used by tools that stream episodes).
void write_exchange_markdown(std::ostream& os, const LlmOptimizer::Exchange& ex,
                             std::size_t index);

}  // namespace lcda::llm
