#pragma once

#include <memory>
#include <vector>

#include "lcda/llm/client.h"
#include "lcda/llm/parser.h"
#include "lcda/llm/prompt.h"
#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"

namespace lcda::llm {

/// The LCDA design optimizer (paper Sec. III-A): an LLM behind the
/// Algorithm-1 prompt loop, usable anywhere a search::Optimizer is.
///
/// propose() builds the prompt from the accumulated history, queries the
/// client, and parses the answer; malformed answers are retried and, after
/// `max_parse_retries`, replaced by a uniform random sample so the co-design
/// loop never stalls on a misbehaving model.
class LlmOptimizer final : public search::Optimizer {
 public:
  struct Options {
    PromptBuilder::Options prompt;
    int max_parse_retries = 3;
  };

  LlmOptimizer(search::SearchSpace space, std::shared_ptr<LlmClient> client)
      : LlmOptimizer(std::move(space), std::move(client), Options{}) {}
  LlmOptimizer(search::SearchSpace space, std::shared_ptr<LlmClient> client,
               Options opts);

  [[nodiscard]] search::Design propose(util::Rng& rng) override;
  void feedback(const search::Observation& obs) override;
  [[nodiscard]] std::string name() const override;

  /// One prompt/response exchange, kept for explainability (the paper's
  /// first future-work direction: the dialogue is human-readable).
  struct Exchange {
    std::string prompt;
    std::string response;
    bool parsed_ok = false;
    int repairs = 0;
  };
  [[nodiscard]] const std::vector<Exchange>& transcript() const {
    return transcript_;
  }
  [[nodiscard]] const std::vector<HistoryEntry>& history() const {
    return history_;
  }

 private:
  search::SearchSpace space_;
  std::shared_ptr<LlmClient> client_;
  Options opts_;
  PromptBuilder builder_;
  std::vector<HistoryEntry> history_;
  std::vector<Exchange> transcript_;
};

}  // namespace lcda::llm
