#pragma once

#include <cstdint>

#include "lcda/llm/client.h"
#include "lcda/llm/prompt_reader.h"
#include "lcda/util/rng.h"

namespace lcda::llm {

/// Deterministic, prompt-driven stand-in for GPT-4 (DESIGN.md
/// substitution #1).
///
/// The simulator reads ONLY the prompt text (via read_prompt) — design
/// space, objective, task framing and history all round-trip through the
/// real Algorithm-1 prompt — and answers in free text that must survive the
/// real response parser. Its policy encodes the behaviour the paper
/// attributes to GPT-4:
///
/// With co-design framing (LCDA):
///  * no cold start — the first proposal is already a sensible
///    VGG-progression CIFAR topology on a standard hardware point;
///  * hill-climbs on the best design in the prompt's history;
///  * "always maintains logical design choices": output channels
///    non-decreasing, never growing by more than 4x, no 1x1-kernel layers
///    (paper Sec. IV-A);
///  * explores a spectrum of channel scalings under the energy objective
///    (paper: "a spectrum of candidate designs with various energy
///    consumptions, all yielding a reasonably high level of accuracy");
///  * carries GPT-4's two *incorrect* CiM priors (paper Sec. IV-B): it
///    enlarges kernels to chase accuracy and shrinks them to chase latency,
///    neither of which holds on variation-prone CiM hardware — this is what
///    makes the latency experiment (Fig. 4) fail for LCDA;
///  * backs off to smaller channels/crossbars after seeing -1 (invalid
///    area) rewards.
///
/// Without co-design framing (LCDA-naive, Fig. 5): the same model sees only
/// "pick numbers to maximize a score" and falls back to generic numeric
/// priors — bigger-is-better sweeps, unconstrained random walks, verbatim
/// repeats — producing the scattered low-quality candidates of Fig. 5.
class SimulatedGpt4 final : public LlmClient {
 public:
  struct Options {
    std::uint64_t seed = 7;
    /// Probability of prepending conversational chatter (exercises the
    /// parser's recovery path, like a mildly non-compliant GPT-4).
    double chatter_probability = 0.15;
    /// Probability of sloppy spacing inside the rollout brackets.
    double format_noise_probability = 0.10;
    /// Disable to ablate the incorrect CiM kernel priors of Sec. IV-B
    /// (i.e. simulate the fine-tuned model the authors could not build).
    bool wrong_cim_kernel_priors = true;
  };

  SimulatedGpt4() : SimulatedGpt4(Options{}) {}
  explicit SimulatedGpt4(Options opts);

  [[nodiscard]] ChatResponse complete(const ChatRequest& request) override;
  [[nodiscard]] std::string name() const override { return "SimulatedGPT4"; }

 private:
  [[nodiscard]] search::Design expert_propose(const PromptFacts& facts);
  [[nodiscard]] search::Design generic_propose(const PromptFacts& facts);
  [[nodiscard]] std::string render(const search::Design& design);
  /// Answers an Explainer prompt by diffing the last two designs in the
  /// prompt's history and narrating the heuristic behind each change.
  [[nodiscard]] std::string explain_change(const PromptFacts& facts) const;

  Options opts_;
  util::Rng rng_;
};

}  // namespace lcda::llm
