#pragma once

#include <memory>
#include <string>

#include "lcda/llm/client.h"
#include "lcda/llm/prompt.h"

namespace lcda::llm {

/// Explainable NAS (paper Sec. V, first future-work direction): "The
/// changes in design parameters between consecutive episodes are
/// human-readable, allowing users to request explanations by sending
/// prompts to LLMs."
///
/// Explainer builds such a prompt — the previous design, the newly proposed
/// design, their rewards and the objective — and returns the LLM's
/// free-text rationale. SimulatedGpt4 answers these prompts by diffing the
/// two designs it reads out of the prompt and narrating the heuristic
/// behind each change, so the explanation honestly reflects what the
/// optimizer can see.
class Explainer {
 public:
  explicit Explainer(std::shared_ptr<LlmClient> client);

  /// Builds the explanation prompt (exposed for tests / transcripts).
  [[nodiscard]] static ChatRequest build_request(const HistoryEntry& previous,
                                                 const HistoryEntry& proposed,
                                                 Objective objective);

  /// Asks the LLM why it moved from `previous` to `proposed`.
  [[nodiscard]] std::string explain(const HistoryEntry& previous,
                                    const HistoryEntry& proposed,
                                    Objective objective);

 private:
  std::shared_ptr<LlmClient> client_;
};

/// Marker phrase the explanation prompt carries; prompt-driven simulators
/// dispatch on it.
inline constexpr std::string_view kExplainMarker =
    "Please explain the reasoning behind the change";

}  // namespace lcda::llm
