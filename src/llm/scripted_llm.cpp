#include "lcda/llm/scripted_llm.h"

namespace lcda::llm {

ScriptedLlm::ScriptedLlm(std::vector<std::string> responses)
    : responses_(std::move(responses)) {}

ChatResponse ScriptedLlm::complete(const ChatRequest& request) {
  requests_.push_back(request);
  ChatResponse resp;
  if (responses_.empty()) return resp;
  resp.content = responses_[std::min(cursor_, responses_.size() - 1)];
  if (cursor_ < responses_.size()) ++cursor_;
  return resp;
}

}  // namespace lcda::llm
