#include "lcda/llm/transcript.h"

#include "lcda/util/strings.h"

namespace lcda::llm {

void write_exchange_markdown(std::ostream& os, const LlmOptimizer::Exchange& ex,
                             std::size_t index) {
  os << "## Exchange " << index << "\n\n";
  os << "**Prompt:**\n\n";
  for (const std::string& line : util::split(ex.prompt, '\n')) {
    os << "> " << line << '\n';
  }
  os << "\n**Response:**\n\n```\n" << ex.response;
  if (!ex.response.empty() && ex.response.back() != '\n') os << '\n';
  os << "```\n\n";
  os << "*parsed: " << (ex.parsed_ok ? "ok" : "FAILED");
  if (ex.repairs > 0) os << ", " << ex.repairs << " value(s) snapped to the space";
  os << "*\n\n";
}

void write_transcript_markdown(std::ostream& os, const LlmOptimizer& optimizer,
                               std::string_view title) {
  os << "# " << title << "\n\n";
  os << "Optimizer: " << optimizer.name() << ", " << optimizer.transcript().size()
     << " exchange(s), " << optimizer.history().size() << " evaluated design(s).\n\n";
  for (std::size_t i = 0; i < optimizer.transcript().size(); ++i) {
    write_exchange_markdown(os, optimizer.transcript()[i], i);
  }
}

}  // namespace lcda::llm
