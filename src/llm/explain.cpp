#include "lcda/llm/explain.h"

#include <sstream>
#include <stdexcept>

namespace lcda::llm {

Explainer::Explainer(std::shared_ptr<LlmClient> client)
    : client_(std::move(client)) {
  if (!client_) throw std::invalid_argument("Explainer: null client");
}

ChatRequest Explainer::build_request(const HistoryEntry& previous,
                                     const HistoryEntry& proposed,
                                     Objective objective) {
  ChatRequest req;
  ChatMessage system;
  system.role = ChatMessage::Role::kSystem;
  system.content =
      "You are an expert in the field of neural architecture search.";
  req.messages.push_back(std::move(system));

  std::ostringstream os;
  os << "We are performing SW-HW co-design of a DNN and a compute-in-memory "
        "accelerator; the hardware metric is "
     << (objective == Objective::kEnergy ? "energy consumption"
                                         : "inference latency")
     << ".\n";
  os << "Previous design:\n" << PromptBuilder::history_line(previous) << "\n";
  os << "Proposed design:\n" << PromptBuilder::history_line(proposed) << "\n";
  os << kExplainMarker
     << " from the previous design to the proposed design, referring to the "
        "specific parameters you changed.";

  ChatMessage user;
  user.role = ChatMessage::Role::kUser;
  user.content = os.str();
  req.messages.push_back(std::move(user));
  return req;
}

std::string Explainer::explain(const HistoryEntry& previous,
                               const HistoryEntry& proposed,
                               Objective objective) {
  return client_->complete(build_request(previous, proposed, objective)).content;
}

}  // namespace lcda::llm
