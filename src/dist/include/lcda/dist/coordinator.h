#pragma once

#include <string>
#include <vector>

#include "lcda/dist/shard.h"

namespace lcda::dist {

/// Process-level shard executor, rebuilt as an event-driven scheduler:
/// writes each spec to the shard directory, spawns one worker subprocess
/// per shard (`<worker_command> --worker=<spec.json>`), keeps up to
/// `max_parallel` in flight, and — instead of draining FIFO — polls all
/// in-flight workers with Subprocess::try_wait() so they are reaped in
/// completion order, with a backed-off sleep between scans (no busy loop).
///
/// On top of plain execution it mitigates stragglers and dead workers:
///
/// - **Progress tracking.** Every worker appends per-seed start/done
///   records and heartbeats to a sidecar progress file; the coordinator
///   polls those files to know how far each shard has got.
/// - **Work stealing.** A shard whose remaining-work estimate exceeds
///   `steal_threshold` x the median of its peers has its not-yet-started
///   seeds revoked (the worker skips them) and re-dispatched to idle
///   slots as fresh specs. Legal because seed derivation is
///   order-independent and the merger accepts arbitrary partitions; the
///   merged bytes cannot change, only the wall clock.
/// - **Supersede duplication.** A straggler with nothing left to steal
///   (all remaining seeds already started) gets its whole unpublished
///   seed set duplicated onto an idle slot; whichever copy finishes
///   first wins and the other worker is stopped (SIGTERM -> grace ->
///   SIGKILL). Seed arbitration in the merger keeps exactly one copy of
///   any seed both published, deterministically (lowest shard index).
/// - **Health tracking.** A worker whose progress file goes stale for
///   `heartbeat_timeout_ms` is declared dead, stopped, and its shard
///   retried without waiting for the process to exit. A slot whose
///   workers fail `banlist_after` distinct shards is banlisted for the
///   study (capacity shrinks, never below one slot).
///
/// A failed shard is retried up to `max_retries` extra attempts before
/// the run gives up with the worker's captured stderr in the error. On
/// success every surviving spec's result_path names a fresh manifest for
/// the merger; specs whose workers were superseded (their seeds are
/// covered by other manifests) are erased from the plan.
class Coordinator {
 public:
  struct Options {
    /// Program (and any leading arguments) of the worker; the coordinator
    /// appends "--worker=<spec path>". Typically the running lcda_run
    /// binary itself (util::self_executable_path).
    std::vector<std::string> worker_command;

    /// Where shard specs, manifests and progress sidecars live. Created
    /// when missing; the caller owns cleanup.
    std::string shard_dir;

    int max_parallel = 1;  ///< concurrent worker processes (slots)
    int max_retries = 2;   ///< extra attempts per shard after the first

    /// Shard lifecycle narration on stderr (spawn / done / retry /
    /// steal / banlist lines).
    bool verbose = true;

    /// Work stealing. A running shard is a straggler when its estimated
    /// remaining milliseconds exceed steal_threshold x the median
    /// estimate of the other running shards (or of the completed shard
    /// walls when it runs alone). Requires >= 1.0; stealing only happens
    /// when a slot is idle, so it can never slow a saturated study.
    bool enable_steal = true;
    double steal_threshold = 2.0;

    /// Worker heartbeat period (written into each spec; 0 disables the
    /// worker-side heartbeat thread) and the staleness bar after which a
    /// silent worker is declared dead (0 disables reaping).
    int heartbeat_ms = 250;
    int heartbeat_timeout_ms = 10000;

    /// Progress-scan pacing: the poll loop sleeps poll_min_ms after an
    /// event and backs off exponentially to poll_max_ms while idle.
    int poll_min_ms = 2;
    int poll_max_ms = 100;

    /// A slot is banlisted once its workers have failed this many
    /// distinct shards (crashes, non-zero exits, heartbeat deaths) —
    /// YT-style node retirement scaled down to process slots. At least
    /// one slot always stays usable.
    int banlist_after = 3;
  };

  /// Per-shard scheduling record, kept for every spec that ever existed
  /// in the plan (including superseded ones the final plan no longer
  /// carries).
  struct ShardStats {
    int index = 0;
    int stolen_from = -1;    ///< parent shard for steal/duplicate specs
    bool supersedes = false; ///< was a whole-shard duplicate
    bool superseded = false; ///< worker stopped; seeds covered elsewhere
    int attempts = 1;        ///< worker processes spawned for this shard
    int slot = -1;           ///< last slot it ran on
    double wall_ms = 0.0;    ///< total busy wall across attempts
    int seeds = 0;           ///< seeds the spec owned at the end
  };

  /// Study-level scheduling outcome, surfaced through `--json` (as the
  /// "dist" object) and the one-line stderr summary.
  struct Stats {
    int planned = 0;    ///< specs at entry
    int spawned = 0;    ///< worker processes started (incl. retries)
    int retries = 0;
    int steals = 0;     ///< steal/duplicate specs created
    int stolen_seeds = 0;
    int superseded = 0; ///< workers stopped because their seeds were covered
    int dead_workers = 0;  ///< heartbeat-staleness kills
    std::vector<int> banlisted_slots;
    std::vector<ShardStats> shards;
  };

  explicit Coordinator(Options opts);

  /// Runs every shard to completion, mutating the plan in place: the
  /// coordinator assigns result/progress/revocation paths under
  /// shard_dir, bumps attempt counters across retries, APPENDS specs it
  /// creates by stealing, and ERASES specs whose workers were superseded
  /// (they have no manifest; their seeds are covered by the appended
  /// ones). After it returns, loading every spec's manifest and merging
  /// yields bytes identical to the single-process study. Throws
  /// std::runtime_error when a shard exhausts its attempts or a worker
  /// cannot be spawned.
  void run(std::vector<ShardSpec>& specs);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Options opts_;
  Stats stats_;
};

}  // namespace lcda::dist
