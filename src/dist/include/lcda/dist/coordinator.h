#pragma once

#include <string>
#include <vector>

#include "lcda/dist/shard.h"

namespace lcda::dist {

/// Process-level shard executor, rebuilt as an event-driven scheduler
/// over a persistent worker pool: each of the `max_parallel` slots IS a
/// resident `<worker_command> --worker-loop` process that the coordinator
/// dispatches shard specs to over a stdin/stdout pipe protocol
/// (lcda-worker-cmd-v1, protocol.h) — fork/exec, store open and evaluator
/// memo warm-up are paid once per slot, not once per shard attempt. The
/// event loop multiplexes pipe replies (`done` / `failed`) with process
/// exits (Subprocess::try_wait — a worker that dies mid-spec is detected
/// the same poll) and the progress-sidecar liveness signal, with a
/// backed-off sleep between scans (no busy loop). A dead or wedged
/// resident worker is simply dropped; the next dispatch to its slot
/// respawns a replacement and the in-flight spec is retried.
///
/// `use_worker_pool = false` restores spawn-per-attempt
/// (`--worker=<spec.json>`, exit status as the completion signal) behind
/// the same scheduler — merged bytes are identical either way, which the
/// tests pin.
///
/// On top of plain execution it mitigates stragglers and dead workers:
///
/// - **Progress tracking.** Every worker appends per-seed start/done
///   records and heartbeats to a sidecar progress file; the coordinator
///   polls those files to know how far each shard has got.
/// - **Work stealing.** A shard whose progress has stalled — no seed
///   started or finished for longer than `steal_threshold` x the median
///   observed per-seed wall — has its not-yet-started seeds revoked (the
///   worker skips them) and re-dispatched to idle slots as fresh specs.
///   Legal because seed derivation is order-independent and the merger
///   accepts arbitrary partitions; the merged bytes cannot change, only
///   the wall clock.
/// - **Supersede duplication.** A straggler with nothing left to steal
///   (all remaining seeds already started) gets its whole unpublished
///   seed set duplicated onto an idle slot; whichever copy finishes
///   first wins and the other worker is stopped (SIGTERM -> grace ->
///   SIGKILL). Seed arbitration in the merger keeps exactly one copy of
///   any seed both published, deterministically (lowest shard index). A
///   duplicate is never itself a steal source and a shard is only judged
///   stalled after its first observed event, so a slow seed races
///   exactly two copies — the plan cannot breed specs without bound.
/// - **Health tracking.** A worker whose progress file goes stale for
///   `heartbeat_timeout_ms` is declared dead, stopped, and its shard
///   retried without waiting for the process to exit. A slot whose
///   workers fail `banlist_after` distinct shards is banlisted for the
///   study (capacity shrinks, never below one slot).
///
/// A failed shard is retried up to `max_retries` extra attempts before
/// the run gives up with the worker's captured stderr in the error. On
/// success every surviving spec's result_path names a fresh manifest for
/// the merger; specs whose workers were superseded (their seeds are
/// covered by other manifests) are erased from the plan.
class Coordinator {
 public:
  struct Options {
    /// Program (and any leading arguments) of the worker; the coordinator
    /// appends "--worker=<spec path>". Typically the running lcda_run
    /// binary itself (util::self_executable_path).
    std::vector<std::string> worker_command;

    /// Where shard specs, manifests and progress sidecars live. Created
    /// when missing; the caller owns cleanup.
    std::string shard_dir;

    int max_parallel = 1;  ///< concurrent worker processes (slots)
    int max_retries = 2;   ///< extra attempts per shard after the first

    /// Keep one resident --worker-loop process per slot and dispatch
    /// specs over its stdin/stdout pipes (the default); false spawns one
    /// --worker process per shard attempt instead. Byte-identical merged
    /// output either way.
    bool use_worker_pool = true;

    /// Shard lifecycle narration on stderr (spawn / done / retry /
    /// steal / banlist lines).
    bool verbose = true;

    /// Work stealing. A running shard is a straggler when its progress
    /// has STALLED: no seed started or finished for longer than
    /// steal_threshold x the observed median per-seed wall (heartbeats
    /// prove liveness, not progress, and do not reset the clock). The
    /// stall bar is additionally floored by steal_min_stale_ms so scan
    /// jitter on sub-millisecond seeds cannot trip it. Judging the GAP
    /// between events rather than a remaining-wall projection keeps the
    /// detector honest on oversubscribed boxes, where CPU queueing
    /// inflates every projection but healthy shards still emit events at
    /// per-seed cadence. Requires steal_threshold >= 1.0; stealing only
    /// happens when a slot is idle, so it can never slow a saturated
    /// study.
    bool enable_steal = true;
    double steal_threshold = 2.0;
    int steal_min_stale_ms = 10;

    /// Worker heartbeat period (written into each spec; 0 disables the
    /// worker-side heartbeat thread) and the staleness bar after which a
    /// silent worker is declared dead (0 disables reaping).
    int heartbeat_ms = 250;
    int heartbeat_timeout_ms = 10000;

    /// Progress-scan pacing: the poll loop sleeps poll_min_ms after an
    /// event and backs off exponentially to poll_max_ms while idle.
    int poll_min_ms = 2;
    int poll_max_ms = 100;

    /// A slot is banlisted once its workers have failed this many
    /// distinct shards (crashes, non-zero exits, heartbeat deaths) —
    /// YT-style node retirement scaled down to process slots. At least
    /// one slot always stays usable.
    int banlist_after = 3;

    /// Stamp a per-attempt trace_path into every dispatched spec, so
    /// workers export their span ring (lcda::obs) next to their manifest
    /// and the caller can gather the files into one merged timeline.
    bool trace_spans = false;
  };

  /// Per-shard scheduling record, kept for every spec that ever existed
  /// in the plan (including superseded ones the final plan no longer
  /// carries).
  struct ShardStats {
    int index = 0;
    int stolen_from = -1;    ///< parent shard for steal/duplicate specs
    bool supersedes = false; ///< was a whole-shard duplicate
    bool superseded = false; ///< worker stopped; seeds covered elsewhere
    int attempts = 1;        ///< worker processes spawned for this shard
    int slot = -1;           ///< last slot it ran on
    double wall_ms = 0.0;    ///< total busy wall across attempts
    int seeds = 0;           ///< seeds the spec owned at the end
  };

  /// Study-level scheduling outcome, surfaced through `--json` (as the
  /// "dist" object) and the one-line stderr summary.
  struct Stats {
    int planned = 0;    ///< specs at entry
    int spawned = 0;    ///< shard dispatches (one per attempt, both modes)
    int pool_workers = 0;  ///< resident worker processes launched (incl.
                           ///< replacements; 0 when the pool is off)
    int retries = 0;
    int steals = 0;     ///< steal/duplicate specs created
    int stolen_seeds = 0;
    /// Straggler-detector visibility: candidates the stall judgement ran
    /// on at all, and candidates over the threshold bar that only the
    /// steal_min_stale_ms floor suppressed. Both zero distinguishes
    /// "detection never ran" (no idle slot, no running candidate) from a
    /// genuinely healthy study that was judged and passed.
    int steal_considered = 0;
    int steal_suppressed_min_stale = 0;
    int superseded = 0; ///< workers stopped because their seeds were covered
    int dead_workers = 0;  ///< heartbeat-staleness kills
    std::vector<int> banlisted_slots;
    std::vector<ShardStats> shards;
  };

  explicit Coordinator(Options opts);

  /// Runs every shard to completion, mutating the plan in place: the
  /// coordinator assigns result/progress/revocation paths under
  /// shard_dir, bumps attempt counters across retries, APPENDS specs it
  /// creates by stealing, and ERASES specs whose workers were superseded
  /// (they have no manifest; their seeds are covered by the appended
  /// ones). After it returns, loading every spec's manifest and merging
  /// yields bytes identical to the single-process study. Throws
  /// std::runtime_error when a shard exhausts its attempts or a worker
  /// cannot be spawned.
  void run(std::vector<ShardSpec>& specs);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Options opts_;
  Stats stats_;
};

}  // namespace lcda::dist
