#pragma once

#include <string>
#include <vector>

#include "lcda/dist/shard.h"

namespace lcda::dist {

/// Process-level shard executor: writes each spec to the shard directory,
/// spawns one worker subprocess per shard (`<worker_command> --worker=
/// <spec.json>`), keeps up to `max_parallel` in flight, and retries a
/// failed shard up to `max_retries` extra attempts before giving up with
/// the worker's captured stderr in the error. On success every spec's
/// result_path names a fresh manifest for the merger.
///
/// Workers are plain subprocesses: a shard survives anything short of the
/// coordinator dying — a crash, an abort, an OOM kill — because the retry
/// simply re-runs the spec, and determinism guarantees the re-run computes
/// the same manifest the crashed attempt would have.
class Coordinator {
 public:
  struct Options {
    /// Program (and any leading arguments) of the worker; the coordinator
    /// appends "--worker=<spec path>". Typically the running lcda_run
    /// binary itself (util::self_executable_path).
    std::vector<std::string> worker_command;

    /// Where shard specs and result manifests live. Created when missing;
    /// the caller owns cleanup (the CLI keeps a user-supplied --shard-dir
    /// and removes an automatic temp one on success).
    std::string shard_dir;

    int max_parallel = 1;  ///< concurrent worker processes
    int max_retries = 2;   ///< extra attempts per shard after the first

    /// Shard lifecycle narration on stderr (spawn / done / retry lines).
    bool verbose = true;
  };

  explicit Coordinator(Options opts);

  /// Runs every shard to completion, mutating each spec in place: the
  /// coordinator assigns result paths under shard_dir and bumps attempt
  /// counters across retries. Throws std::runtime_error when a shard
  /// exhausts its attempts or a worker cannot be spawned.
  void run(std::vector<ShardSpec>& specs);

 private:
  Options opts_;
};

}  // namespace lcda::dist
