#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "lcda/core/scenario.h"
#include "lcda/util/json_lite.h"

namespace lcda::core {
class PerformanceEvaluator;
}

namespace lcda::dist {

/// Which study a shard carries a slice of. `kRuns` is the CLI's per-seed
/// episode-listing mode (one RunResult per strategy x seed), `kAggregate`
/// and `kSpeedup` are the multi-seed statistics modes
/// (core::run_aggregate / core::speedup_study).
enum class ShardMode { kRuns, kAggregate, kSpeedup };

[[nodiscard]] std::string_view shard_mode_name(ShardMode m);
[[nodiscard]] ShardMode shard_mode_from_name(std::string_view name);

/// A self-contained slice of one study: everything a worker process needs
/// to reproduce its share of the seeds bit-for-bit, serialized as JSON and
/// handed to `lcda_run --worker=<spec.json>`.
///
/// Seeds are GLOBAL indices into the study's seed list, not a worker-local
/// count: the aggregate/speedup modes derive each seed's stream with
/// util::derive_seed(config.seed, s) (order-independent by construction)
/// and the runs mode uses config.seed + s, so any partition of the index
/// set reproduces exactly the runs a single process would have produced.
struct ShardSpec {
  int index = 0;  ///< shard number, 0-based
  int count = 1;  ///< total shards in this study's plan

  ShardMode mode = ShardMode::kRuns;
  core::Scenario scenario;  ///< overrides already applied

  /// Strategy and resolved episode budget (runs/aggregate modes; the
  /// speedup study takes both budgets from the config).
  core::Strategy strategy = core::Strategy::kLcda;
  int episodes = 0;

  /// The study's FULL seed count. Workers replicate the single-process
  /// per-seed parallelism split (core::run_aggregate divides the worker
  /// budget by the total seed count), so a shard's runs match the
  /// reference runs in schedule as well as result.
  int total_seeds = 1;
  std::vector<int> seeds;  ///< global seed indices this shard owns

  /// Which planner study (strategy x episodes entry) this spec slices.
  /// Steal specs inherit it from their parent, so the merger can group a
  /// plan by study without relying on contiguous strategy-major order.
  int study_slot = 0;

  /// Aggregate-mode reward threshold (NaN = none) and speedup-mode
  /// threshold fraction.
  double threshold = std::numeric_limits<double>::quiet_NaN();
  double threshold_fraction = 0.95;

  /// Where the worker writes its result manifest (JSON; see worker.cpp).
  /// Left empty by the planner; the coordinator assigns it under the
  /// shard directory. Runs-mode manifests carry each run's trace CSV, so
  /// the merged --trace output diffs directly against golden traces.
  std::string result_path;

  /// Progress sidecar (lcda-shard-progress-v1, see progress.h): the worker
  /// appends per-seed start/done records and heartbeats here; empty
  /// disables progress emission. Assigned by the coordinator, like
  /// result_path.
  std::string progress_path;

  /// Seed-revocation file the worker re-reads before each seed: seeds the
  /// coordinator stole and re-dispatched elsewhere are skipped. Empty
  /// disables the check. Keyed by shard (not attempt), so a retried shard
  /// still honours earlier steals.
  std::string revoke_path;

  /// Where the worker exports its span ring (Chrome trace-event JSON, see
  /// obs/trace.h) after publishing the manifest; empty disables tracing in
  /// the worker. Assigned per attempt by the coordinator when its
  /// trace_spans option is on; lcda_run gathers the files into one merged
  /// timeline. Bookkeeping, like result_path — not part of the checksum.
  std::string trace_path;

  /// Heartbeat period for the progress sidecar; 0 disables the heartbeat
  /// thread (per-seed records still freshen the file).
  int heartbeat_ms = 0;

  /// Steal provenance: the shard index this spec's seeds were stolen from,
  /// -1 for planner-born shards. When `supersedes` is also set, this spec
  /// duplicates every seed its parent would still publish, so the
  /// coordinator stops the parent the moment this spec's manifest lands.
  int stolen_from = -1;
  bool supersedes = false;

  /// Crash injection for retry tests: fail_first_attempt aborts attempt 0
  /// at entry (before any evaluation or cache traffic) with exit code 3;
  /// fail_attempts=N generalizes it to every attempt < N. The
  /// coordinator's retry then runs the shard clean, which keeps the merged
  /// result — counters included — identical to a run without the crash.
  bool fail_first_attempt = false;
  int fail_attempts = 0;
  int attempt = 0;
};

/// ShardSpec <-> JSON (format "lcda-shard-spec-v1"). Round-trips every
/// field; from_json rejects a missing/foreign format tag.
[[nodiscard]] util::Json shard_spec_to_json(const ShardSpec& spec);
[[nodiscard]] ShardSpec shard_spec_from_json(const util::Json& j);

/// Shard spec file I/O. Loading rejects unreadable or malformed files.
[[nodiscard]] ShardSpec load_shard_spec(const std::string& path);
void save_shard_spec(const ShardSpec& spec, const std::string& path);

/// Checksum of a spec's study-identity fields (mode, scenario, strategy,
/// episodes, seed partition, thresholds) — NOT of its bookkeeping (paths,
/// attempt counter, crash flag). Workers echo it into their manifest;
/// the merger refuses a manifest whose checksum disagrees with the spec,
/// which catches stale result files in a reused shard directory.
[[nodiscard]] std::uint64_t shard_spec_checksum(const ShardSpec& spec);

/// One strategy's slice of a study (the planner's input): the strategy and
/// its resolved episode budget.
struct StrategyStudy {
  core::Strategy strategy = core::Strategy::kLcda;
  int episodes = 0;
};

/// Decomposes a study into shard specs: each strategy's seed list is split
/// into at most `shards` balanced contiguous ranges (never more shards
/// than seeds), strategy-major. Deterministic: the same inputs always
/// produce the same partition. result_path is left empty for the
/// coordinator to assign. `shards` >= 1; speedup mode takes a single
/// (ignored) StrategyStudy entry.
[[nodiscard]] std::vector<ShardSpec> plan_shards(
    const core::Scenario& scenario, ShardMode mode,
    const std::vector<StrategyStudy>& strategies, int seeds, int shards,
    double threshold, double threshold_fraction);

class ProgressWriter;

/// Runs one shard in-process and returns its result manifest (format
/// "lcda-shard-result-v1"): per-seed summaries in aggregate/speedup mode,
/// full run payloads (JSON trace + CSV text) in runs mode. This is the
/// worker's core, exposed for in-process testing of the merge contract.
/// With a ProgressWriter it emits per-seed start/done records, and with
/// spec.revoke_path set it skips seeds the coordinator stole.
///
/// `warm_evaluator` optionally supplies an evaluator that outlives the
/// spec (the resident worker loop passes its cached one so striped memos
/// stay warm across specs); nullptr builds a fresh one per shard. Safe
/// because both evaluators are content-keyed and thread-safe — sharing
/// scope cannot change a result — and it must match the spec's evaluator
/// configuration, which is what the loop keys its cache by.
[[nodiscard]] util::Json run_shard(const ShardSpec& spec,
                                   ProgressWriter* progress = nullptr,
                                   core::PerformanceEvaluator* warm_evaluator =
                                       nullptr);

/// The `lcda_run --worker=<spec.json>` entry point: loads the spec,
/// honours crash injection, runs the shard, and writes the manifest
/// (atomic temp-file + rename). Returns a process exit code; failures
/// are reported on stderr for the coordinator to capture.
[[nodiscard]] int run_worker(const std::string& spec_path);

/// The hidden `lcda_run --worker-loop` entry point: a resident worker that
/// reads lcda-worker-cmd-v1 command lines (protocol.h) from stdin and
/// executes each `run <spec_path>` through the same path as run_worker,
/// replying `done <manifest_path>` / `failed <reason>` on stdout. Across
/// specs it keeps warm what is content-keyed and therefore result-neutral:
/// the evaluator's striped cost-plan/layer-span memos (keyed by
/// core::evaluation_fingerprint) and the process-wide mmap'd store segment
/// cache. Everything stream- or seed-scoped (RNG cursors, run caches,
/// counters, the EvalStore session) is rebuilt per spec, so a pooled study
/// merges byte-identical to spawn-per-shard. Exits 0 on `shutdown` or
/// stdin EOF.
[[nodiscard]] int run_worker_loop();

}  // namespace lcda::dist
