#pragma once

#include <string>
#include <vector>

#include "lcda/core/stats_runner.h"
#include "lcda/dist/shard.h"
#include "lcda/util/json_lite.h"

namespace lcda::dist {

/// Loads the result manifest `spec.result_path` points at and verifies it
/// belongs to this spec: format tag, shard index, mode, and the spec
/// checksum the worker echoed back — a stale manifest in a reused shard
/// directory fails here instead of corrupting a merge. Throws
/// std::runtime_error on a missing/unreadable/foreign manifest.
[[nodiscard]] util::Json load_shard_manifest(const ShardSpec& spec);

/// Folds the per-seed summaries of one strategy's shards back into the
/// AggregateResult a single-process core::run_aggregate would have
/// produced, byte-for-byte: the fold walks seeds in canonical order (the
/// Welford accumulators are order-sensitive in floating point), every
/// double has already survived the JSON round trip bit-exactly, and the
/// cache counters are order-free sums. All specs must share one strategy,
/// episode budget, seed count and threshold; the seed partition must cover
/// 0..total_seeds-1 exactly once.
[[nodiscard]] core::AggregateResult merge_aggregate(
    const std::vector<ShardSpec>& specs,
    const std::vector<util::Json>& manifests);

/// Reassembles a speedup study's per-seed reports in canonical seed order
/// — identical to core::speedup_study over the same config and seeds.
[[nodiscard]] std::vector<core::SpeedupReport> merge_speedup(
    const std::vector<ShardSpec>& specs,
    const std::vector<util::Json>& manifests);

/// One reassembled runs-mode run: the full run JSON (embedded verbatim in
/// merged experiment documents), its trace CSV rows, and the scalars the
/// coordinator's summary lines print.
struct MergedRun {
  int seed = 0;
  std::string label;
  util::Json run_json;
  std::string csv;
  double best_reward = 0.0;
  int best_episode = -1;
  std::string best_design;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long persistent_hits = 0;
  long long persistent_shared_hits = 0;
  long long persistent_skipped = 0;
  long long persistent_save_failures = 0;
};

/// Reassembles runs-mode payloads in canonical order — study-major (the
/// planner's strategy order via study_slot), seeds ascending — the order
/// the single-process CLI produces its runs in. `specs` is the full plan
/// after the coordinator ran it, steal-appended specs included; seeds
/// published by two shards (steal races) are arbitrated to the lowest
/// shard index, and each study's partition must cover its seed range
/// exactly.
[[nodiscard]] std::vector<MergedRun> merge_runs(
    const std::vector<ShardSpec>& specs,
    const std::vector<util::Json>& manifests);

}  // namespace lcda::dist
