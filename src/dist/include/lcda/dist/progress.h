#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

namespace lcda::dist {

/// Worker-side half of the progress protocol: appends one JSON line per
/// event to the shard's sidecar progress file (format
/// "lcda-shard-progress-v1", line-oriented so a crash can tear at most the
/// last line):
///
///   {"e":"begin","pid":1234,"attempt":0}
///   {"e":"start","seed":4}            — seed 4 is now being computed
///   {"e":"done","seed":4,"wall_ms":12.5}
///   {"e":"hb"}                        — periodic heartbeat
///
/// Every append also freshens the file's mtime, which is the liveness
/// signal the coordinator actually watches (no clock synchronisation
/// between processes, just "has this file moved lately"). The heartbeat
/// thread exists so a worker grinding inside one long seed still moves the
/// file; per-seed records alone would look like a hang.
///
/// Appends use a single O_APPEND write per record and a mutex across the
/// heartbeat thread and the seed loop, so records never interleave
/// mid-line.
class ProgressWriter {
 public:
  /// Opens (creates/appends) the sidecar. Throws when the file cannot be
  /// opened.
  explicit ProgressWriter(std::string path);
  ~ProgressWriter();

  ProgressWriter(const ProgressWriter&) = delete;
  ProgressWriter& operator=(const ProgressWriter&) = delete;

  void begin(int attempt);
  void seed_started(int seed);
  void seed_done(int seed, double wall_ms);

  /// Starts/stops the background heartbeat thread (interval_ms > 0).
  /// stop_heartbeats() is also how the wedge-injection test simulates a
  /// live-but-dead worker: records stop, mtime goes stale, and the
  /// coordinator's staleness reaper takes over.
  void start_heartbeats(int interval_ms);
  void stop_heartbeats();

 private:
  void append(const std::string& line);

  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;
  std::thread heartbeat_;
  std::condition_variable cv_;
  std::mutex cv_mutex_;
  bool stop_ = false;
};

/// What the coordinator sees when it polls a progress file: which seeds
/// the worker has started and finished, and the per-seed wall clock of the
/// finished ones. A torn final line (the worker died mid-append) is
/// ignored; unknown events are skipped so the format can grow.
struct ProgressSnapshot {
  std::set<int> started;  ///< includes finished seeds
  std::set<int> done;
  double done_wall_ms = 0.0;  ///< sum over finished seeds
  int records = 0;

  [[nodiscard]] bool started_not_done(int seed) const {
    return started.count(seed) != 0 && done.count(seed) == 0;
  }
};

/// Parses a progress sidecar. A missing file is an empty snapshot (the
/// worker may not have started yet), not an error.
[[nodiscard]] ProgressSnapshot read_progress(const std::string& path);

/// Seed revocation, the coordinator-side half of a steal: the file at
/// `path` atomically (temp + rename) holds the JSON array of global seed
/// indices the coordinator has re-dispatched elsewhere. The worker
/// re-reads it before starting each seed and skips revoked ones; a seed
/// that was already started when the revocation landed is computed anyway
/// and the merger's arbitration keeps exactly one copy.
void write_revocations(const std::string& path, const std::set<int>& seeds);
[[nodiscard]] std::set<int> read_revocations(const std::string& path);

}  // namespace lcda::dist
