#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace lcda::dist {

/// The coordinator <-> resident-worker pipe protocol: one JSON object per
/// line, format `lcda-worker-cmd-v1`, commands down the worker's stdin and
/// replies up its stdout. Line-delimited so a reader never needs to know a
/// message's length in advance, and JSON so paths with arbitrary bytes
/// survive the trip. A malformed or torn line parses to std::nullopt — the
/// coordinator treats a worker that talks garbage like a dead one
/// (respawn + retry), it never crashes on it.
inline constexpr const char* kWorkerCmdFormat = "lcda-worker-cmd-v1";

/// Coordinator -> worker. `run` names a shard-spec file to execute; `ping`
/// requests a `pong` (liveness probe without touching a spec); `shutdown`
/// asks the worker to finish nothing further and exit 0 (the worker also
/// treats stdin EOF as shutdown, so a coordinator crash can never leave an
/// immortal worker reading a closed pipe).
struct WorkerCommand {
  enum class Kind { kRun, kPing, kShutdown };
  Kind kind = Kind::kRun;
  std::string spec_path;  ///< kRun only
};

/// Worker -> coordinator. `done` carries the path of the manifest the spec
/// published; `failed` carries a reason string (the spec did not produce a
/// manifest, but the worker survived and can take another command);
/// `pong` answers `ping`.
struct WorkerReply {
  enum class Kind { kDone, kFailed, kPong };
  Kind kind = Kind::kDone;
  std::string manifest_path;  ///< kDone only
  std::string reason;         ///< kFailed only
};

/// Serialize to a single newline-terminated JSON line.
[[nodiscard]] std::string encode_worker_command(const WorkerCommand& cmd);
[[nodiscard]] std::string encode_worker_reply(const WorkerReply& reply);

/// Parse one line (with or without its trailing newline). Returns
/// std::nullopt for anything that is not a well-formed v1 message:
/// invalid JSON, wrong/missing format tag, unknown command, or a `run`
/// without a spec path.
[[nodiscard]] std::optional<WorkerCommand> parse_worker_command(
    std::string_view line);
[[nodiscard]] std::optional<WorkerReply> parse_worker_reply(
    std::string_view line);

/// Reassembles complete lines from arbitrary pipe-read chunks. feed()
/// whatever read() returned — message fragments, many messages at once, a
/// torn tail — and next_line() hands back each complete line (without the
/// newline) in order, or std::nullopt while the current line is still
/// partial. The partial tail survives in pending() until its newline
/// arrives, so a message split across reads is never lost or misparsed.
class LineBuffer {
 public:
  void feed(std::string_view chunk) { pending_.append(chunk); }

  [[nodiscard]] std::optional<std::string> next_line();

  /// Bytes received but not yet terminated by a newline.
  [[nodiscard]] const std::string& pending() const { return pending_; }

 private:
  std::string pending_;
};

}  // namespace lcda::dist
