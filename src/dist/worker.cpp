// Worker-side half of the distributed study runner: executes one ShardSpec
// exactly as the single-process engine would have (same seed derivation,
// same per-seed parallelism split, same evaluator sharing) and reports a
// result manifest the merger can fold back bit-for-bit.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "lcda/core/report.h"
#include "lcda/core/stats_runner.h"
#include "lcda/dist/progress.h"
#include "lcda/dist/protocol.h"
#include "lcda/dist/shard.h"
#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/util/fault.h"
#include "lcda/util/strings.h"

namespace lcda::dist {

namespace {

constexpr std::string_view kResultFormat = "lcda-shard-result-v1";

std::string hex64(std::uint64_t v) { return "0x" + util::hex_u64(v); }

/// One aggregate-mode seed summary: exactly the per-seed values
/// core::run_aggregate's fold consumes, so the merger can replay that fold
/// in canonical seed order. Doubles survive the JSON round trip bit-for-bit
/// (shortest-round-trip formatting), which is what makes the merged
/// AggregateResult byte-identical to the single-process one.
util::Json aggregate_entry(int seed, const core::RunResult& run,
                           double threshold) {
  util::Json e = util::Json::object();
  e["seed"] = seed;
  e["final_best"] = run.best_reward();
  util::Json rmax = util::Json::array();
  for (double r : run.reward_running_max()) rmax.push_back(r);
  e["running_max"] = rmax;
  e["cache_hits"] = static_cast<long long>(run.cache_hits);
  e["cache_misses"] = static_cast<long long>(run.cache_misses);
  e["persistent_hits"] = static_cast<long long>(run.persistent_hits);
  e["persistent_shared_hits"] =
      static_cast<long long>(run.persistent_shared_hits);
  e["persistent_skipped"] = static_cast<long long>(run.persistent_skipped);
  e["persistent_save_failures"] =
      static_cast<long long>(run.persistent_save_failures);
  if (!std::isnan(threshold)) {
    e["threshold_episode"] = run.episodes_to_reach(threshold);
  }
  return e;
}

util::Json speedup_entry(int seed, const core::SpeedupReport& r) {
  util::Json e = util::Json::object();
  e["seed"] = seed;
  e["threshold"] = r.threshold;
  e["lcda_episodes"] = r.lcda_episodes;
  e["nacim_episodes"] = r.nacim_episodes;
  e["lcda_best"] = r.lcda_best;
  e["nacim_best"] = r.nacim_best;
  return e;
}

/// One runs-mode payload: the full run JSON (merged documents embed it
/// verbatim, so the assembled experiment JSON matches a single-process
/// run byte-for-byte), the run's CSV rows for --trace concatenation, and
/// the scalars the coordinator's per-run summary lines print.
util::Json run_entry(int seed, const std::string& label,
                     const core::RunResult& run) {
  util::Json e = util::Json::object();
  e["seed"] = seed;
  e["label"] = label;
  e["best_reward"] = run.best_reward();
  e["best_episode"] = run.best_episode;
  e["best_design"] = run.best().design.describe();
  e["cache_hits"] = static_cast<long long>(run.cache_hits);
  e["cache_misses"] = static_cast<long long>(run.cache_misses);
  e["persistent_hits"] = static_cast<long long>(run.persistent_hits);
  e["persistent_shared_hits"] =
      static_cast<long long>(run.persistent_shared_hits);
  e["persistent_skipped"] = static_cast<long long>(run.persistent_skipped);
  e["persistent_save_failures"] =
      static_cast<long long>(run.persistent_save_failures);
  e["run"] = core::run_to_json(run, label);
  std::ostringstream csv;
  core::write_run_csv(csv, run, label);
  e["csv"] = csv.str();
  return e;
}

/// Atomic publication, same discipline as the persistent cache: a
/// coordinator or a human inspecting the shard directory never sees a
/// torn manifest, and a crashed attempt leaves at most a stale temp file.
void write_manifest_atomically(const util::Json& manifest,
                               const std::string& path) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  core::write_json_file(manifest, tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("worker: rename to " + path +
                             " failed: " + ec.message());
  }
}

/// Drives the per-seed loop shared by all three modes: re-reads the
/// revocation file before each seed (a stolen seed is skipped — the
/// coordinator re-dispatched it), emits start/done progress records, and
/// honours the LCDA_FAULT injection harness (util/fault.h): wedge@seed
/// hangs without heartbeats (the injected dead worker — still a live
/// process, so only the coordinator's staleness reaper can catch it),
/// kill@seed _exit(42)s (the injected mid-spec crash — only the
/// respawn-and-retry path can recover), and sleep@seed is the injected
/// straggler. `body(seed)` computes one seed and appends its manifest
/// entry.
template <typename Body>
void for_each_owned_seed(const ShardSpec& spec, ProgressWriter* progress,
                         const Body& body) {
  util::FaultInjector::set_attempt(spec.attempt);
  const util::FaultInjector& faults = util::FaultInjector::instance();
  for (int s : spec.seeds) {
    if (!spec.revoke_path.empty()) {
      const std::set<int> revoked = read_revocations(spec.revoke_path);
      if (revoked.count(s) != 0) continue;
    }
    if (progress != nullptr) progress->seed_started(s);
    if (faults.wedge_at_seed(s, spec.attempt)) {
      std::fprintf(stderr, "worker: shard %d wedging at seed %d (injected)\n",
                   spec.index, s);
      if (progress != nullptr) progress->stop_heartbeats();
      std::this_thread::sleep_for(std::chrono::hours(1));
    }
    if (faults.kill_at_seed(s, spec.attempt)) {
      std::fprintf(stderr, "worker: shard %d dying at seed %d (injected)\n",
                   spec.index, s);
      std::fflush(stderr);
      ::_exit(42);
    }
    if (const int sleep_ms = faults.sleep_ms_at_seed(s); sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    std::optional<obs::Span> seed_span;
    if (obs::SpanTracer::instance().enabled()) {
      char label[32];
      std::snprintf(label, sizeof(label), "seed-%d", s);
      seed_span.emplace(label);
    }
    const auto t0 = std::chrono::steady_clock::now();
    body(s);
    if (progress != nullptr) {
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      progress->seed_done(s, wall_ms);
    }
  }
}

}  // namespace

util::Json run_shard(const ShardSpec& spec, ProgressWriter* progress,
                     core::PerformanceEvaluator* warm_evaluator) {
  const core::ExperimentConfig& config = spec.scenario.config;
  // This spec's slice of the worker's metrics: the resident loop runs many
  // specs in one process, so the manifest carries a DELTA over the
  // registry, not the process totals. Disabled registry -> empty delta.
  const obs::MetricsSnapshot obs_base = obs::Registry::instance().snapshot();

  util::Json manifest = util::Json::object();
  manifest["format"] = kResultFormat;
  manifest["shard"] = spec.index;
  manifest["count"] = spec.count;
  manifest["mode"] = std::string(shard_mode_name(spec.mode));
  manifest["strategy"] = std::string(core::strategy_name(spec.strategy));
  manifest["episodes"] = spec.episodes;
  manifest["spec_checksum"] = hex64(shard_spec_checksum(spec));
  util::Json entries = util::Json::array();
  core::StoreMetrics store_total;
  long long resumed_total = 0;

  // Retried and stolen shard copies resume each seed from its checkpoint
  // when the study checkpoints at all: a seed the dead attempt finished
  // restores instantly from its final snapshot, a seed it died inside
  // continues from the last boundary — and either way the re-run seed's
  // output is byte-identical to a clean first attempt, which is what
  // keeps the retry path inside the merge byte-contract.
  const bool resume_retries = spec.attempt > 0 || spec.stolen_from >= 0;
  auto with_resume = [&](core::ExperimentConfig cfg) {
    if (!cfg.checkpoint_dir.empty() && resume_retries) cfg.resume = true;
    return cfg;
  };

  switch (spec.mode) {
    case ShardMode::kAggregate: {
      // One shared evaluator across the shard's seeds, like run_aggregate
      // shares one across the whole study: its memos are content-keyed,
      // so sharing scope cannot change a result. A warm evaluator from the
      // worker loop widens the scope to "across specs" under the same
      // contract.
      const auto owned =
          warm_evaluator != nullptr ? nullptr : core::make_evaluator(config);
      core::PerformanceEvaluator* evaluator =
          warm_evaluator != nullptr ? warm_evaluator : owned.get();
      for_each_owned_seed(spec, progress, [&](int s) {
        const core::RunResult run = core::run_strategy(
            spec.strategy, spec.episodes,
            with_resume(core::aggregate_seed_config(config, s, spec.total_seeds)),
            evaluator);
        store_total += run.store;
        resumed_total += run.resumed_episodes;
        entries.push_back(aggregate_entry(s, run, spec.threshold));
      });
      break;
    }
    case ShardMode::kSpeedup: {
      const auto owned =
          warm_evaluator != nullptr ? nullptr : core::make_evaluator(config);
      core::PerformanceEvaluator* evaluator =
          warm_evaluator != nullptr ? warm_evaluator : owned.get();
      for_each_owned_seed(spec, progress, [&](int s) {
        const core::SpeedupReport report = core::measure_speedup(
            with_resume(core::aggregate_seed_config(config, s, spec.total_seeds)),
            spec.threshold_fraction, evaluator);
        store_total += report.store;
        resumed_total += report.resumed_episodes;
        entries.push_back(speedup_entry(s, report));
      });
      break;
    }
    case ShardMode::kRuns: {
      for_each_owned_seed(spec, progress, [&](int s) {
        // The CLI's per-seed mode offsets the base seed directly (the
        // aggregate modes derive by key instead); both are replicated
        // here verbatim so either partitioning is bit-compatible.
        core::ExperimentConfig cfg = config;
        cfg.seed = config.seed + static_cast<std::uint64_t>(s);
        cfg = with_resume(std::move(cfg));
        const core::RunResult run = core::run_strategy(
            spec.strategy, spec.episodes, cfg, warm_evaluator);
        const std::string label =
            std::string(core::strategy_name(spec.strategy)) + "/seed" +
            std::to_string(cfg.seed);
        store_total += run.store;
        resumed_total += run.resumed_episodes;
        entries.push_back(run_entry(s, label, run));
      });
      break;
    }
  }

  manifest["entries"] = entries;
  // Store-level traffic, shard-total. Deliberately OUTSIDE the entries the
  // merger folds (the merge byte-contract stays untouched — a warm store
  // shifts these without changing any merged byte); the coordinator sums
  // them across manifests into the non-reproducible "dist" stats object.
  util::Json store = util::Json::object();
  store["hits"] = static_cast<long long>(store_total.hits);
  store["misses"] = static_cast<long long>(store_total.misses);
  store["shared_hits"] = static_cast<long long>(store_total.shared_hits);
  store["shared_misses"] = static_cast<long long>(store_total.shared_misses);
  store["bytes_read"] = static_cast<long long>(store_total.bytes_read);
  store["bytes_published"] =
      static_cast<long long>(store_total.bytes_published);
  manifest["store"] = store;
  // Episodes this shard restored from checkpoints instead of re-running —
  // like "store", outside the merged byte-contract (the coordinator sums
  // it into the non-reproducible "dist" stats object).
  manifest["resumed_episodes"] = resumed_total;
  // The spec's metrics delta (lcda-metrics-v1). Rides outside the merge
  // byte-contract like "store"; lcda_run merges the deltas across
  // manifests with the coordinator's own snapshot into the study totals.
  manifest["obs"] =
      obs::Registry::instance().snapshot().delta_since(obs_base).to_json();
  return manifest;
}

namespace {

/// Crash injection aborts at entry — before any evaluation or cache
/// write — so the retry runs the shard clean and the merged study, cache
/// counters included, is identical to one without the crash.
bool injected_crash(const ShardSpec& spec) {
  if ((spec.fail_first_attempt && spec.attempt == 0) ||
      spec.attempt < spec.fail_attempts) {
    std::fprintf(stderr, "worker: shard %d injected failure on attempt %d\n",
                 spec.index, spec.attempt);
    return true;
  }
  return false;
}

/// The shared per-spec execution core behind --worker and --worker-loop:
/// progress sidecar lifecycle, run_shard, atomic manifest publication, and
/// the completion line on stderr. Throws on any failure.
void execute_spec(const ShardSpec& spec,
                  core::PerformanceEvaluator* warm_evaluator) {
  if (spec.result_path.empty()) {
    throw std::invalid_argument("worker: spec has no result_path");
  }
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  const bool tracing = !spec.trace_path.empty();
  if (tracing) {
    // Each exported file covers exactly this spec: a resident worker
    // clears between specs, so its ring never mixes two shards' spans.
    tracer.enable();
    tracer.clear();
  }
  {
    char label[32];
    std::snprintf(label, sizeof(label), "shard-%d", spec.index);
    obs::Span span(label);
    std::unique_ptr<ProgressWriter> progress;
    if (!spec.progress_path.empty()) {
      progress = std::make_unique<ProgressWriter>(spec.progress_path);
      progress->begin(spec.attempt);
      progress->start_heartbeats(spec.heartbeat_ms);
    }
    util::Json manifest = run_shard(spec, progress.get(), warm_evaluator);
    if (progress != nullptr) progress->stop_heartbeats();
    write_manifest_atomically(manifest, spec.result_path);
  }
  if (tracing) {
    // After the manifest: an attempt that died mid-spec leaves no trace
    // file, so the gatherer only ever sees complete timelines.
    obs::write_trace_file(
        tracer.export_chrome(static_cast<int>(::getpid()),
                             "worker shard " + std::to_string(spec.index)),
        spec.trace_path);
  }
  std::fprintf(stderr, "worker: shard %d/%d done (%zu seed(s), attempt %d)\n",
               spec.index, spec.count, spec.seeds.size(), spec.attempt);
}

void send_reply(const WorkerReply& reply) {
  const std::string line = encode_worker_reply(reply);
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fflush(stdout);
}

}  // namespace

int run_worker(const std::string& spec_path) {
  // Workers always meter: the manifest's "obs" delta is how store totals
  // and engine counters reach the coordinator's merged snapshot. Metering
  // is counter bumps at run/round granularity — noise next to a spec's
  // evaluation work — and it never touches an output byte.
  obs::Registry::instance().enable();
  try {
    const ShardSpec spec = load_shard_spec(spec_path);
    if (injected_crash(spec)) return 3;
    execute_spec(spec, nullptr);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcda_run --worker: %s\n", e.what());
    return 1;
  }
}

int run_worker_loop() {
  obs::Registry::instance().enable();  // see run_worker
  // Warm evaluators keyed by evaluation identity: a spec whose
  // evaluation_fingerprint matches an earlier one reuses its evaluator,
  // so the striped cost-plan/layer-span memos survive across specs.
  // Surrogate only — the trained evaluator's options are not covered by
  // the fingerprint's replay contract, so it stays per-spec. Bounded so a
  // long-lived worker serving many distinct studies cannot grow without
  // limit (the memos inside one evaluator are already budgeted).
  constexpr std::size_t kMaxWarmEvaluators = 8;
  std::map<std::uint64_t, std::unique_ptr<core::PerformanceEvaluator>> warm;

  std::string line;
  while (std::getline(std::cin, line)) {
    const std::optional<WorkerCommand> cmd = parse_worker_command(line);
    if (!cmd) {
      WorkerReply reply;
      reply.kind = WorkerReply::Kind::kFailed;
      reply.reason = "malformed command line";
      send_reply(reply);
      continue;
    }
    if (cmd->kind == WorkerCommand::Kind::kShutdown) return 0;
    if (cmd->kind == WorkerCommand::Kind::kPing) {
      WorkerReply reply;
      reply.kind = WorkerReply::Kind::kPong;
      send_reply(reply);
      continue;
    }
    WorkerReply reply;
    try {
      const ShardSpec spec = load_shard_spec(cmd->spec_path);
      if (injected_crash(spec)) {
        // Die like a crashed worker would (the coordinator must see
        // process death with "exit 3", not a polite `failed` reply) so the
        // pool's respawn-and-retry path is what the injection exercises.
        std::fflush(stderr);
        ::_exit(3);
      }
      core::PerformanceEvaluator* warm_evaluator = nullptr;
      const core::ExperimentConfig& config = spec.scenario.config;
      if (config.evaluator_kind == core::EvaluatorKind::kSurrogate) {
        const std::uint64_t fp = core::evaluation_fingerprint(config);
        auto it = warm.find(fp);
        if (it == warm.end()) {
          if (warm.size() >= kMaxWarmEvaluators) warm.clear();
          it = warm.emplace(fp, core::make_evaluator(config)).first;
        }
        warm_evaluator = it->second.get();
      }
      execute_spec(spec, warm_evaluator);
      reply.kind = WorkerReply::Kind::kDone;
      reply.manifest_path = spec.result_path;
    } catch (const std::exception& e) {
      reply.kind = WorkerReply::Kind::kFailed;
      reply.reason = e.what();
    }
    send_reply(reply);
  }
  // stdin EOF: the coordinator is gone (or closed us out) — exit cleanly.
  return 0;
}

}  // namespace lcda::dist
