#include "lcda/dist/protocol.h"

#include "lcda/util/json_lite.h"

namespace lcda::dist {

namespace {

using util::Json;

const char* command_name(WorkerCommand::Kind kind) {
  switch (kind) {
    case WorkerCommand::Kind::kRun: return "run";
    case WorkerCommand::Kind::kPing: return "ping";
    case WorkerCommand::Kind::kShutdown: return "shutdown";
  }
  return "run";
}

const char* reply_name(WorkerReply::Kind kind) {
  switch (kind) {
    case WorkerReply::Kind::kDone: return "done";
    case WorkerReply::Kind::kFailed: return "failed";
    case WorkerReply::Kind::kPong: return "pong";
  }
  return "done";
}

/// Parses `line` into a v1 message object; nullptr-equivalent (nullopt at
/// the caller) for invalid JSON, a non-object, or a wrong format tag.
std::optional<Json> parse_envelope(std::string_view line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!doc.is_object()) return std::nullopt;
  if (!doc.contains("format") || !doc.at("format").is_string() ||
      doc.at("format").as_string() != kWorkerCmdFormat) {
    return std::nullopt;
  }
  return doc;
}

}  // namespace

std::string encode_worker_command(const WorkerCommand& cmd) {
  Json doc = Json::object();
  doc["format"] = kWorkerCmdFormat;
  doc["cmd"] = command_name(cmd.kind);
  if (cmd.kind == WorkerCommand::Kind::kRun) doc["spec_path"] = cmd.spec_path;
  return doc.dump() + "\n";
}

std::string encode_worker_reply(const WorkerReply& reply) {
  Json doc = Json::object();
  doc["format"] = kWorkerCmdFormat;
  doc["reply"] = reply_name(reply.kind);
  if (reply.kind == WorkerReply::Kind::kDone) {
    doc["manifest_path"] = reply.manifest_path;
  }
  if (reply.kind == WorkerReply::Kind::kFailed) doc["reason"] = reply.reason;
  return doc.dump() + "\n";
}

std::optional<WorkerCommand> parse_worker_command(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::optional<Json> doc = parse_envelope(line);
  if (!doc || !doc->contains("cmd") || !doc->at("cmd").is_string()) {
    return std::nullopt;
  }
  const std::string& name = doc->at("cmd").as_string();
  WorkerCommand cmd;
  if (name == "run") {
    cmd.kind = WorkerCommand::Kind::kRun;
    if (!doc->contains("spec_path") || !doc->at("spec_path").is_string()) {
      return std::nullopt;
    }
    cmd.spec_path = doc->at("spec_path").as_string();
  } else if (name == "ping") {
    cmd.kind = WorkerCommand::Kind::kPing;
  } else if (name == "shutdown") {
    cmd.kind = WorkerCommand::Kind::kShutdown;
  } else {
    return std::nullopt;
  }
  return cmd;
}

std::optional<WorkerReply> parse_worker_reply(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::optional<Json> doc = parse_envelope(line);
  if (!doc || !doc->contains("reply") || !doc->at("reply").is_string()) {
    return std::nullopt;
  }
  const std::string& name = doc->at("reply").as_string();
  WorkerReply reply;
  if (name == "done") {
    reply.kind = WorkerReply::Kind::kDone;
    if (!doc->contains("manifest_path") ||
        !doc->at("manifest_path").is_string()) {
      return std::nullopt;
    }
    reply.manifest_path = doc->at("manifest_path").as_string();
  } else if (name == "failed") {
    reply.kind = WorkerReply::Kind::kFailed;
    if (doc->contains("reason") && doc->at("reason").is_string()) {
      reply.reason = doc->at("reason").as_string();
    }
  } else if (name == "pong") {
    reply.kind = WorkerReply::Kind::kPong;
  } else {
    return std::nullopt;
  }
  return reply;
}

std::optional<std::string> LineBuffer::next_line() {
  const std::size_t nl = pending_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = pending_.substr(0, nl);
  pending_.erase(0, nl + 1);
  return line;
}

}  // namespace lcda::dist
