#include "lcda/dist/merge.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lcda/util/strings.h"

namespace lcda::dist {

namespace {

constexpr std::string_view kResultFormat = "lcda-shard-result-v1";

std::string hex64(std::uint64_t v) { return "0x" + util::hex_u64(v); }

/// Collects every (seed -> entry) pair of one shard group, with
/// exactly-once arbitration: a seed published by two DIFFERENT shards is
/// legal under work stealing (a revocation can race the worker's own
/// start of that seed, and a supersede duplicate can tie with its
/// parent), and both copies are byte-identical because per-seed entries
/// are partition-independent — so the merge deterministically keeps the
/// lowest shard index, regardless of which worker won the wall-clock
/// race. The same shard listing a seed twice is still a hard error, as
/// is a missing seed or one outside the study: a statistic must never
/// quietly cover the wrong seed set.
std::map<int, util::Json> entries_by_seed(
    const std::vector<ShardSpec>& specs,
    const std::vector<util::Json>& manifests,
    const std::vector<std::size_t>& group, int total_seeds) {
  if (specs.size() != manifests.size()) {
    throw std::invalid_argument("merge: specs/manifests size mismatch");
  }
  std::map<int, std::pair<int, util::Json>> by_seed;  // seed -> (index, entry)
  for (std::size_t i : group) {
    for (const util::Json& entry : manifests[i].at("entries").elements()) {
      const int seed = static_cast<int>(entry.at("seed").as_int());
      const auto it = by_seed.find(seed);
      if (it == by_seed.end()) {
        by_seed.emplace(seed, std::make_pair(specs[i].index, entry));
      } else if (it->second.first == specs[i].index) {
        throw std::runtime_error("merge: seed " + std::to_string(seed) +
                                 " appears in more than one shard");
      } else if (specs[i].index < it->second.first) {
        it->second = std::make_pair(specs[i].index, entry);
      }
    }
  }
  for (int s = 0; s < total_seeds; ++s) {
    if (by_seed.find(s) == by_seed.end()) {
      throw std::runtime_error("merge: seed " + std::to_string(s) +
                               " missing from the shard results");
    }
  }
  if (static_cast<int>(by_seed.size()) != total_seeds) {
    throw std::runtime_error("merge: shard results cover seeds outside the study");
  }
  std::map<int, util::Json> out;
  for (auto& [seed, indexed] : by_seed) {
    out.emplace(seed, std::move(indexed.second));
  }
  return out;
}

std::vector<std::size_t> all_positions(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace

util::Json load_shard_manifest(const ShardSpec& spec) {
  std::ifstream in(spec.result_path);
  if (!in) {
    throw std::runtime_error("load_shard_manifest: cannot open " +
                             spec.result_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  util::Json manifest;
  try {
    manifest = util::Json::parse(buffer.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("load_shard_manifest: corrupt manifest " +
                             spec.result_path + ": " + e.what());
  }
  if (!manifest.contains("format") ||
      manifest.at("format").as_string() != kResultFormat) {
    throw std::runtime_error("load_shard_manifest: " + spec.result_path +
                             " is not a " + std::string(kResultFormat) +
                             " file");
  }
  if (static_cast<int>(manifest.at("shard").as_int()) != spec.index ||
      manifest.at("mode").as_string() != shard_mode_name(spec.mode) ||
      manifest.at("spec_checksum").as_string() !=
          hex64(shard_spec_checksum(spec))) {
    throw std::runtime_error(
        "load_shard_manifest: " + spec.result_path +
        " does not match its shard spec (stale shard directory?)");
  }
  return manifest;
}

core::AggregateResult merge_aggregate(const std::vector<ShardSpec>& specs,
                                      const std::vector<util::Json>& manifests) {
  if (specs.empty()) throw std::invalid_argument("merge_aggregate: no shards");
  const ShardSpec& head = specs.front();
  for (const ShardSpec& spec : specs) {
    const bool same_threshold =
        (std::isnan(spec.threshold) && std::isnan(head.threshold)) ||
        spec.threshold == head.threshold;
    if (spec.mode != ShardMode::kAggregate || spec.strategy != head.strategy ||
        spec.episodes != head.episodes ||
        spec.total_seeds != head.total_seeds || !same_threshold) {
      throw std::invalid_argument(
          "merge_aggregate: shards disagree on the study definition");
    }
  }

  const auto by_seed = entries_by_seed(specs, manifests,
                                       all_positions(specs.size()),
                                       head.total_seeds);

  // Replays core::run_aggregate's fold over the per-seed summaries, in
  // canonical seed order. Keep the two in lockstep: any new AggregateResult
  // field needs a manifest entry field and a line here.
  core::AggregateResult agg;
  agg.strategy = head.strategy;
  agg.episodes = head.episodes;
  agg.seeds = head.total_seeds;
  agg.threshold = head.threshold;
  agg.running_best.resize(static_cast<std::size_t>(head.episodes));
  for (const auto& [seed, entry] : by_seed) {
    const std::vector<util::Json> rmax = entry.at("running_max").elements();
    if (rmax.size() != agg.running_best.size()) {
      throw std::runtime_error("merge_aggregate: seed " +
                               std::to_string(seed) +
                               " has a wrong-length running_max");
    }
    for (std::size_t e = 0; e < rmax.size(); ++e) {
      agg.running_best[e].add(rmax[e].as_double());
    }
    agg.final_best.add(entry.at("final_best").as_double());
    agg.cache_hits += entry.at("cache_hits").as_int();
    agg.cache_misses += entry.at("cache_misses").as_int();
    agg.persistent_hits += entry.at("persistent_hits").as_int();
    agg.persistent_shared_hits += entry.at("persistent_shared_hits").as_int();
    agg.persistent_skipped += entry.at("persistent_skipped").as_int();
    agg.persistent_save_failures +=
        entry.at("persistent_save_failures").as_int();
    if (!std::isnan(head.threshold)) {
      const int hit = static_cast<int>(entry.at("threshold_episode").as_int());
      if (hit >= 0) {
        agg.episodes_to_threshold.add(static_cast<double>(hit) + 1.0);
        ++agg.reached;
      }
    }
  }
  return agg;
}

std::vector<core::SpeedupReport> merge_speedup(
    const std::vector<ShardSpec>& specs,
    const std::vector<util::Json>& manifests) {
  if (specs.empty()) throw std::invalid_argument("merge_speedup: no shards");
  for (const ShardSpec& spec : specs) {
    if (spec.mode != ShardMode::kSpeedup ||
        spec.total_seeds != specs.front().total_seeds) {
      throw std::invalid_argument(
          "merge_speedup: shards disagree on the study definition");
    }
  }
  const auto by_seed =
      entries_by_seed(specs, manifests, all_positions(specs.size()),
                      specs.front().total_seeds);

  std::vector<core::SpeedupReport> out;
  out.reserve(by_seed.size());
  for (const auto& [seed, entry] : by_seed) {
    core::SpeedupReport r;
    r.threshold = entry.at("threshold").as_double();
    r.lcda_episodes = static_cast<int>(entry.at("lcda_episodes").as_int());
    r.nacim_episodes = static_cast<int>(entry.at("nacim_episodes").as_int());
    r.lcda_best = entry.at("lcda_best").as_double();
    r.nacim_best = entry.at("nacim_best").as_double();
    out.push_back(r);
  }
  return out;
}

std::vector<MergedRun> merge_runs(const std::vector<ShardSpec>& specs,
                                  const std::vector<util::Json>& manifests) {
  if (specs.size() != manifests.size()) {
    throw std::invalid_argument("merge_runs: specs/manifests size mismatch");
  }
  // Canonical order is study-major (the planner's strategy order), seeds
  // ascending within a study. The plan used to guarantee that by
  // construction; steal specs appended by the coordinator break the
  // contiguity, so group by study_slot in first-appearance order and sort
  // each group's seeds explicitly.
  std::vector<int> slot_order;
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].mode != ShardMode::kRuns) {
      throw std::invalid_argument("merge_runs: non-runs shard in the plan");
    }
    auto [it, fresh] = groups.emplace(specs[i].study_slot,
                                      std::vector<std::size_t>{});
    if (fresh) slot_order.push_back(specs[i].study_slot);
    it->second.push_back(i);
  }

  std::vector<MergedRun> out;
  for (int slot : slot_order) {
    const std::vector<std::size_t>& group = groups.at(slot);
    const ShardSpec& head = specs[group.front()];
    for (std::size_t i : group) {
      if (specs[i].strategy != head.strategy ||
          specs[i].episodes != head.episodes ||
          specs[i].total_seeds != head.total_seeds) {
        throw std::invalid_argument(
            "merge_runs: shards of one study slot disagree on its "
            "definition");
      }
    }
    const auto by_seed =
        entries_by_seed(specs, manifests, group, head.total_seeds);
    for (const auto& [seed, entry] : by_seed) {
      MergedRun run;
      run.seed = seed;
      run.label = entry.at("label").as_string();
      run.run_json = entry.at("run");
      run.csv = entry.at("csv").as_string();
      run.best_reward = entry.at("best_reward").as_double();
      run.best_episode = static_cast<int>(entry.at("best_episode").as_int());
      run.best_design = entry.at("best_design").as_string();
      run.cache_hits = entry.at("cache_hits").as_int();
      run.cache_misses = entry.at("cache_misses").as_int();
      run.persistent_hits = entry.at("persistent_hits").as_int();
      run.persistent_shared_hits =
          entry.at("persistent_shared_hits").as_int();
      run.persistent_skipped = entry.at("persistent_skipped").as_int();
      run.persistent_save_failures =
          entry.at("persistent_save_failures").as_int();
      out.push_back(std::move(run));
    }
  }
  return out;
}

}  // namespace lcda::dist
