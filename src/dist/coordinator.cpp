#include "lcda/dist/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "lcda/util/subprocess.h"

namespace lcda::dist {

namespace {

/// "seeds 4-7" / "seeds 3" — shard log labels.
std::string seeds_label(const ShardSpec& spec) {
  if (spec.seeds.empty()) return "no seeds";
  const auto [lo, hi] =
      std::minmax_element(spec.seeds.begin(), spec.seeds.end());
  if (*lo == *hi) return "seed " + std::to_string(*lo);
  return "seeds " + std::to_string(*lo) + "-" + std::to_string(*hi);
}

/// The last non-empty stderr line — the part of a crash worth quoting in
/// a one-line retry message (the full capture goes into the final error).
std::string last_line(const std::string& text) {
  std::size_t end = text.find_last_not_of('\n');
  if (end == std::string::npos) return "";
  std::size_t begin = text.find_last_of('\n', end);
  begin = begin == std::string::npos ? 0 : begin + 1;
  return text.substr(begin, end - begin + 1);
}

}  // namespace

Coordinator::Coordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.worker_command.empty()) {
    throw std::invalid_argument("Coordinator: empty worker_command");
  }
  if (opts_.shard_dir.empty()) {
    throw std::invalid_argument("Coordinator: empty shard_dir");
  }
  if (opts_.max_parallel < 1) {
    throw std::invalid_argument("Coordinator: max_parallel must be >= 1");
  }
  if (opts_.max_retries < 0) {
    throw std::invalid_argument("Coordinator: max_retries must be >= 0");
  }
}

void Coordinator::run(std::vector<ShardSpec>& specs) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opts_.shard_dir, ec);
  if (ec) {
    throw std::runtime_error("Coordinator: cannot create shard dir " +
                             opts_.shard_dir + ": " + ec.message());
  }

  std::vector<std::string> spec_paths(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string stem =
        opts_.shard_dir + "/shard-" + std::to_string(specs[i].index);
    spec_paths[i] = stem + "-spec.json";
    specs[i].result_path = stem + "-result.json";
    // A manifest left over from a previous plan in a reused directory
    // must not be mistaken for this run's output (the checksum would
    // catch a different study, but not a re-run of the same one).
    fs::remove(specs[i].result_path, ec);
  }

  struct Active {
    std::unique_ptr<util::Subprocess> process;
    std::size_t shard = 0;
  };
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < specs.size(); ++i) queue.push_back(i);
  std::deque<Active> active;

  const auto spawn = [&](std::size_t i) {
    save_shard_spec(specs[i], spec_paths[i]);
    std::vector<std::string> argv = opts_.worker_command;
    argv.push_back("--worker=" + spec_paths[i]);
    Active a;
    a.process = std::make_unique<util::Subprocess>(std::move(argv));
    a.shard = i;
    if (opts_.verbose) {
      std::fprintf(stderr,
                   "[dist] shard %d/%d (%s, %s, attempt %d) -> pid %ld\n",
                   specs[i].index, specs[i].count,
                   std::string(core::strategy_name(specs[i].strategy)).c_str(),
                   seeds_label(specs[i]).c_str(), specs[i].attempt,
                   static_cast<long>(a.process->pid()));
    }
    active.push_back(std::move(a));
  };

  while (!queue.empty() || !active.empty()) {
    while (!queue.empty() &&
           static_cast<int>(active.size()) < opts_.max_parallel) {
      const std::size_t next = queue.front();
      queue.pop_front();
      spawn(next);
    }

    // FIFO drain: waiting on the oldest in-flight worker keeps every
    // stderr pipe bounded (each is fully drained before the next wait)
    // and retries promptly — shards cost roughly the same, so the oldest
    // is the likeliest to have finished.
    Active done = std::move(active.front());
    active.pop_front();
    const std::size_t i = done.shard;
    const util::Subprocess::Result result = done.process->wait();

    if (result.ok()) {
      if (opts_.verbose) {
        std::fprintf(stderr, "[dist] shard %d done\n", specs[i].index);
      }
      continue;
    }

    // attempt N failed; N+1 is the next one. max_retries bounds the
    // retries, so attempts 0..max_retries are allowed.
    if (specs[i].attempt < opts_.max_retries) {
      ++specs[i].attempt;
      if (opts_.verbose) {
        const std::string line = last_line(result.stderr_output);
        std::fprintf(stderr,
                     "[dist] shard %d failed (%s)%s%s — retrying "
                     "(attempt %d/%d)\n",
                     specs[i].index, result.describe().c_str(),
                     line.empty() ? "" : ": ", line.c_str(), specs[i].attempt,
                     opts_.max_retries);
      }
      queue.push_back(i);
      continue;
    }

    throw std::runtime_error(
        "Coordinator: shard " + std::to_string(specs[i].index) + " failed (" +
        result.describe() + ") after " + std::to_string(specs[i].attempt + 1) +
        " attempt(s); worker stderr:\n" + result.stderr_output);
  }
}

}  // namespace lcda::dist
