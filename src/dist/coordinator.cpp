#include "lcda/dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lcda/dist/progress.h"
#include "lcda/util/subprocess.h"

namespace lcda::dist {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// "seeds 4-7" / "seeds 3" — shard log labels.
std::string seeds_label(const ShardSpec& spec) {
  if (spec.seeds.empty()) return "no seeds";
  const auto [lo, hi] =
      std::minmax_element(spec.seeds.begin(), spec.seeds.end());
  if (*lo == *hi) return "seed " + std::to_string(*lo);
  return "seeds " + std::to_string(*lo) + "-" + std::to_string(*hi);
}

/// The last non-empty stderr line — the part of a crash worth quoting in
/// a one-line retry message (the full capture goes into the final error).
std::string last_line(const std::string& text) {
  std::size_t end = text.find_last_not_of('\n');
  if (end == std::string::npos) return "";
  std::size_t begin = text.find_last_of('\n', end);
  begin = begin == std::string::npos ? 0 : begin + 1;
  return text.substr(begin, end - begin + 1);
}

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// Upper median of an unsorted sample (copies; samples are tiny).
double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// How a shard is doing right now, from the coordinator's point of view.
enum class State { kPending, kRunning, kDone, kSuperseded };

/// Scheduler-side shard record, parallel to the specs vector.
struct Track {
  State state = State::kPending;
  std::set<int> revoked;           // stolen seeds (persisted to revoke file)
  std::set<int> started, done;     // current attempt's progress records
  bool stolen = false;             // phase-1 steal already taken
  int duplicate_pos = -1;          // position of its supersede-duplicate
  Clock::time_point spawn_time{};
  double wall_ms = 0.0;            // busy wall summed across attempts
  int slot = -1;
  int spawns = 0;
};

struct Active {
  std::unique_ptr<util::Subprocess> process;
  std::size_t pos = 0;  // position in the specs vector
  int slot = -1;
};

/// The seeds a spec still owes the merger: its seed list minus the
/// revoked ones (the worker skips those; thief specs own them now).
std::vector<int> owned_seeds(const ShardSpec& spec,
                             const std::set<int>& revoked) {
  std::vector<int> out;
  for (int s : spec.seeds) {
    if (revoked.count(s) == 0) out.push_back(s);
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.worker_command.empty()) {
    throw std::invalid_argument("Coordinator: empty worker_command");
  }
  if (opts_.shard_dir.empty()) {
    throw std::invalid_argument("Coordinator: empty shard_dir");
  }
  if (opts_.max_parallel < 1) {
    throw std::invalid_argument("Coordinator: max_parallel must be >= 1");
  }
  if (opts_.max_retries < 0) {
    throw std::invalid_argument("Coordinator: max_retries must be >= 0");
  }
  if (opts_.steal_threshold < 1.0) {
    throw std::invalid_argument("Coordinator: steal_threshold must be >= 1");
  }
  if (opts_.poll_min_ms < 1) opts_.poll_min_ms = 1;
  if (opts_.poll_max_ms < opts_.poll_min_ms) {
    opts_.poll_max_ms = opts_.poll_min_ms;
  }
}

void Coordinator::run(std::vector<ShardSpec>& specs) {
  std::error_code ec;
  fs::create_directories(opts_.shard_dir, ec);
  if (ec) {
    throw std::runtime_error("Coordinator: cannot create shard dir " +
                             opts_.shard_dir + ": " + ec.message());
  }

  stats_ = Stats{};
  stats_.planned = static_cast<int>(specs.size());

  std::vector<Track> track(specs.size());
  std::deque<std::size_t> queue;
  std::vector<Active> active;
  std::vector<char> slot_busy(static_cast<std::size_t>(opts_.max_parallel), 0);
  std::vector<char> slot_banned(static_cast<std::size_t>(opts_.max_parallel), 0);
  std::vector<std::set<int>> slot_failures(
      static_cast<std::size_t>(opts_.max_parallel));

  // Shard "names" (spec.index) survive steals: new specs take fresh
  // indices past every existing one, so file stems never collide.
  int next_index = 0;
  for (const ShardSpec& spec : specs) {
    next_index = std::max(next_index, spec.index + 1);
  }

  const auto stem = [&](std::size_t p) {
    return opts_.shard_dir + "/shard-" + std::to_string(specs[p].index);
  };

  for (std::size_t p = 0; p < specs.size(); ++p) {
    specs[p].result_path = stem(p) + "-result.json";
    specs[p].revoke_path = stem(p) + "-revoke.json";
    specs[p].heartbeat_ms = opts_.heartbeat_ms;
    // Leftovers from a previous plan in a reused directory must not be
    // mistaken for this run's output (the checksum would catch a
    // different study, but not a re-run of the same one).
    fs::remove(specs[p].result_path, ec);
    fs::remove(specs[p].revoke_path, ec);
    queue.push_back(p);
  }

  const auto free_slot = [&]() -> int {
    for (int s = 0; s < opts_.max_parallel; ++s) {
      if (!slot_busy[static_cast<std::size_t>(s)] &&
          !slot_banned[static_cast<std::size_t>(s)]) {
        return s;
      }
    }
    return -1;
  };
  const auto usable_slots = [&] {
    int n = 0;
    for (char b : slot_banned) n += b == 0;
    return n;
  };

  const auto spawn = [&](std::size_t p, int slot) {
    ShardSpec& spec = specs[p];
    const std::string spec_path = stem(p) + "-spec.json";
    spec.progress_path =
        stem(p) + "-progress-a" + std::to_string(spec.attempt) + ".jsonl";
    fs::remove(spec.progress_path, ec);
    save_shard_spec(spec, spec_path);
    std::vector<std::string> argv = opts_.worker_command;
    argv.push_back("--worker=" + spec_path);
    Active a;
    a.process = std::make_unique<util::Subprocess>(std::move(argv));
    a.pos = p;
    a.slot = slot;
    slot_busy[static_cast<std::size_t>(slot)] = 1;
    Track& t = track[p];
    t.state = State::kRunning;
    t.started.clear();
    t.done.clear();
    t.slot = slot;
    t.spawn_time = Clock::now();
    ++t.spawns;
    ++stats_.spawned;
    if (opts_.verbose) {
      std::fprintf(stderr,
                   "[dist] shard %d/%d (%s, %s, attempt %d) -> pid %ld "
                   "slot %d\n",
                   spec.index, spec.count,
                   std::string(core::strategy_name(spec.strategy)).c_str(),
                   seeds_label(spec).c_str(), spec.attempt,
                   static_cast<long>(a.process->pid()), slot);
    }
    active.push_back(std::move(a));
  };

  const auto release_slot = [&](int slot) {
    if (slot >= 0) slot_busy[static_cast<std::size_t>(slot)] = 0;
  };

  /// Stops the active worker of shard `p` (if any) and drops its entry.
  const auto stop_worker = [&](std::size_t p) {
    for (std::size_t a = 0; a < active.size(); ++a) {
      if (active[a].pos != p) continue;
      (void)active[a].process->stop(/*grace_ms=*/500);
      release_slot(active[a].slot);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(a));
      return;
    }
  };

  const auto drop_from_queue = [&](std::size_t p) {
    queue.erase(std::remove(queue.begin(), queue.end(), p), queue.end());
  };

  /// A shard's worker was stopped or skipped because every seed it would
  /// have published is covered by another spec's manifest (a supersede
  /// duplicate, or the parent of a now-redundant duplicate).
  const auto supersede = [&](std::size_t p, const char* why) {
    Track& t = track[p];
    if (t.state == State::kRunning) stop_worker(p);
    if (t.state == State::kPending) drop_from_queue(p);
    t.state = State::kSuperseded;
    ++stats_.superseded;
    if (opts_.verbose) {
      std::fprintf(stderr, "[dist] shard %d superseded (%s)\n",
                   specs[p].index, why);
    }
  };

  const auto on_success = [&](std::size_t p) {
    Track& t = track[p];
    t.state = State::kDone;
    if (opts_.verbose) {
      std::fprintf(stderr, "[dist] shard %d done\n", specs[p].index);
    }
    // A whole-shard duplicate landing first covers its parent; the parent
    // landing first makes an unfinished duplicate redundant. Either way
    // the slower copy is stopped and erased from the plan — the merger's
    // per-seed arbitration handles the narrow race where both published.
    if (specs[p].supersedes && specs[p].stolen_from >= 0) {
      for (std::size_t q = 0; q < specs.size(); ++q) {
        if (specs[q].index == specs[p].stolen_from &&
            (track[q].state == State::kRunning ||
             track[q].state == State::kPending)) {
          supersede(q, "duplicate finished first");
        }
      }
    }
    if (t.duplicate_pos >= 0) {
      const std::size_t d = static_cast<std::size_t>(t.duplicate_pos);
      if (track[d].state == State::kRunning ||
          track[d].state == State::kPending) {
        supersede(d, "original finished first");
      }
    }
  };

  const auto on_failure = [&](std::size_t p, int slot,
                              const std::string& described,
                              const std::string& stderr_output) {
    Track& t = track[p];
    // Health accounting: the slot (stand-in for a host in the multi-host
    // era) remembers which distinct shards died on it; repeat offenders
    // are banlisted for the rest of the study, but never below one
    // usable slot.
    if (slot >= 0) {
      auto& failures = slot_failures[static_cast<std::size_t>(slot)];
      failures.insert(specs[p].index);
      if (static_cast<int>(failures.size()) >= opts_.banlist_after &&
          !slot_banned[static_cast<std::size_t>(slot)] && usable_slots() > 1) {
        slot_banned[static_cast<std::size_t>(slot)] = 1;
        stats_.banlisted_slots.push_back(slot);
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] slot %d banlisted after %zu distinct shard "
                       "failure(s)\n",
                       slot, failures.size());
        }
      }
    }
    // A parent with a live (or finished) whole-shard duplicate owes the
    // merger nothing — the duplicate owns the same seeds. Skip the retry.
    if (t.duplicate_pos >= 0 &&
        track[static_cast<std::size_t>(t.duplicate_pos)].state !=
            State::kSuperseded) {
      t.state = State::kSuperseded;
      ++stats_.superseded;
      if (opts_.verbose) {
        std::fprintf(stderr,
                     "[dist] shard %d failed (%s) but its duplicate covers "
                     "it — not retrying\n",
                     specs[p].index, described.c_str());
      }
      return;
    }
    // attempt N failed; N+1 is the next one. max_retries bounds the
    // retries, so attempts 0..max_retries are allowed.
    if (specs[p].attempt < opts_.max_retries) {
      ++specs[p].attempt;
      ++stats_.retries;
      if (opts_.verbose) {
        const std::string line = last_line(stderr_output);
        std::fprintf(stderr,
                     "[dist] shard %d failed (%s)%s%s — retrying "
                     "(attempt %d/%d)\n",
                     specs[p].index, described.c_str(),
                     line.empty() ? "" : ": ", line.c_str(), specs[p].attempt,
                     opts_.max_retries);
      }
      t.state = State::kPending;
      queue.push_back(p);
      return;
    }
    throw std::runtime_error(
        "Coordinator: shard " + std::to_string(specs[p].index) + " failed (" +
        described + ") after " + std::to_string(specs[p].attempt + 1) +
        " attempt(s); worker stderr:\n" + stderr_output);
  };

  /// Creates a steal spec owning `seeds`, inheriting the parent's study
  /// identity, and queues it for the next idle slot.
  const auto dispatch_steal = [&](std::size_t parent, std::vector<int> seeds,
                                  bool supersedes) {
    ShardSpec spec;
    spec.index = next_index++;
    spec.count = specs[parent].count;
    spec.mode = specs[parent].mode;
    spec.scenario = specs[parent].scenario;
    spec.strategy = specs[parent].strategy;
    spec.episodes = specs[parent].episodes;
    spec.total_seeds = specs[parent].total_seeds;
    spec.seeds = std::move(seeds);
    spec.threshold = specs[parent].threshold;
    spec.threshold_fraction = specs[parent].threshold_fraction;
    spec.study_slot = specs[parent].study_slot;
    spec.stolen_from = specs[parent].index;
    spec.supersedes = supersedes;
    specs.push_back(std::move(spec));
    track.emplace_back();
    const std::size_t p = specs.size() - 1;
    specs[p].result_path = stem(p) + "-result.json";
    specs[p].revoke_path = stem(p) + "-revoke.json";
    specs[p].heartbeat_ms = opts_.heartbeat_ms;
    fs::remove(specs[p].result_path, ec);
    fs::remove(specs[p].revoke_path, ec);
    queue.push_back(p);
    ++stats_.steals;
    stats_.stolen_seeds += static_cast<int>(specs[p].seeds.size());
    return p;
  };

  /// One straggler-mitigation pass: finds the worst relative straggler
  /// among running shards and steals its not-yet-started seeds (phase 1)
  /// or duplicates its whole unpublished remainder (phase 2). At most one
  /// steal per pass keeps the policy easy to reason about; the next scan
  /// can steal again.
  const auto maybe_steal = [&] {
    if (!opts_.enable_steal || !queue.empty() || free_slot() < 0) return false;

    struct Estimate {
      std::size_t pos;
      double remaining_ms;
      double elapsed;
      std::vector<int> owned;
    };
    std::vector<Estimate> running;
    for (const Active& a : active) {
      const Track& t = track[a.pos];
      Estimate e;
      e.pos = a.pos;
      e.elapsed = elapsed_ms(t.spawn_time);
      e.owned = owned_seeds(specs[a.pos], t.revoked);
      const double done_n = static_cast<double>(t.done.size());
      const double remaining_n =
          static_cast<double>(e.owned.size()) - done_n;
      const double per_seed = done_n > 0 ? e.elapsed / done_n : e.elapsed;
      e.remaining_ms = remaining_n > 0 ? remaining_n * per_seed : 0.0;
      running.push_back(std::move(e));
    }
    if (running.empty()) return false;

    std::vector<double> completed_walls;
    for (std::size_t p = 0; p < track.size(); ++p) {
      if (track[p].state == State::kDone) {
        completed_walls.push_back(track[p].wall_ms);
      }
    }

    // Worst straggler first.
    std::sort(running.begin(), running.end(), [](const auto& x, const auto& y) {
      return x.remaining_ms > y.remaining_ms;
    });
    for (const Estimate& e : running) {
      if (e.remaining_ms <= 0.0) continue;
      std::vector<double> others;
      for (const Estimate& o : running) {
        if (o.pos != e.pos) others.push_back(o.remaining_ms);
      }
      bool straggling = false;
      if (!others.empty()) {
        straggling = e.remaining_ms > opts_.steal_threshold * median_of(others);
      } else if (!completed_walls.empty()) {
        straggling = e.elapsed > opts_.steal_threshold * median_of(completed_walls);
      } else {
        // A lone shard with idle slots and no reference point: splitting
        // it is pure win as long as it has parallelizable seeds left.
        straggling = true;
      }
      if (!straggling) continue;

      // No reference into track across dispatch_steal: it grows the
      // vector and would invalidate one.
      std::vector<int> unstarted;
      for (int s : e.owned) {
        if (track[e.pos].started.count(s) == 0) unstarted.push_back(s);
      }

      if (!unstarted.empty()) {
        // Phase 1: revoke the unstarted seeds, split them over the idle
        // slots. The worker re-reads the revocation file before each
        // seed, so it simply never runs them.
        for (int s : unstarted) track[e.pos].revoked.insert(s);
        write_revocations(specs[e.pos].revoke_path, track[e.pos].revoked);
        int idle = 0;
        for (int s = 0; s < opts_.max_parallel; ++s) {
          if (!slot_busy[static_cast<std::size_t>(s)] &&
              !slot_banned[static_cast<std::size_t>(s)]) {
            ++idle;
          }
        }
        const std::size_t chunks =
            std::min(unstarted.size(), static_cast<std::size_t>(idle));
        std::vector<int> created;
        for (std::size_t c = 0; c < chunks; ++c) {
          const std::size_t begin = c * unstarted.size() / chunks;
          const std::size_t end = (c + 1) * unstarted.size() / chunks;
          const std::size_t p = dispatch_steal(
              e.pos,
              std::vector<int>(unstarted.begin() + begin,
                               unstarted.begin() + end),
              /*supersedes=*/false);
          created.push_back(specs[p].index);
        }
        track[e.pos].stolen = true;
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] stealing %zu not-yet-started seed(s) from "
                       "shard %d into %zu new shard(s)\n",
                       unstarted.size(), specs[e.pos].index, created.size());
        }
        return true;
      }

      if (track[e.pos].duplicate_pos < 0 && !e.owned.empty() &&
          track[e.pos].done.size() < e.owned.size()) {
        // Phase 2: everything left is already started (or finished but
        // unpublished), so re-dispatch the shard's whole owed seed set as
        // a supersede duplicate; whichever copy publishes first wins and
        // the other worker is stopped.
        const std::size_t d =
            dispatch_steal(e.pos, e.owned, /*supersedes=*/true);
        track[e.pos].duplicate_pos = static_cast<int>(d);
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] duplicating shard %d's remaining %zu seed(s) "
                       "as shard %d (supersede race)\n",
                       specs[e.pos].index, e.owned.size(), specs[d].index);
        }
        return true;
      }
    }
    return false;
  };

  /// Progress scan: refresh per-seed knowledge and reap workers whose
  /// progress file has gone stale (alive but wedged — a crash would have
  /// surfaced through try_wait already).
  const auto scan_progress = [&] {
    bool event = false;
    for (std::size_t a = 0; a < active.size();) {
      Track& t = track[active[a].pos];
      const ShardSpec& spec = specs[active[a].pos];
      if (!spec.progress_path.empty()) {
        const ProgressSnapshot snap = read_progress(spec.progress_path);
        t.started = snap.started;
        t.done = snap.done;
      }
      bool stale = false;
      if (opts_.heartbeat_timeout_ms > 0 && opts_.heartbeat_ms > 0) {
        std::error_code mec;
        const auto mtime = fs::last_write_time(spec.progress_path, mec);
        if (!mec) {
          const auto age = fs::file_time_type::clock::now() - mtime;
          stale = std::chrono::duration_cast<std::chrono::milliseconds>(age)
                      .count() > opts_.heartbeat_timeout_ms;
        } else {
          // No progress file yet: measure from spawn (a worker that never
          // even opened its sidecar is just as dead).
          stale = elapsed_ms(t.spawn_time) >
                  static_cast<double>(opts_.heartbeat_timeout_ms);
        }
      }
      if (!stale) {
        ++a;
        continue;
      }
      // Declared dead: stop it (TERM -> grace -> KILL) and route the
      // shard through the ordinary failure path without waiting for a
      // voluntary exit.
      Active dead = std::move(active[a]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(a));
      const util::Subprocess::Result result = dead.process->stop(500);
      release_slot(dead.slot);
      t.wall_ms += elapsed_ms(t.spawn_time);
      ++stats_.dead_workers;
      if (opts_.verbose) {
        std::fprintf(stderr,
                     "[dist] shard %d worker pid %ld stale (no heartbeat "
                     "for > %d ms) — stopped (%s)\n",
                     spec.index, static_cast<long>(dead.process->pid()),
                     opts_.heartbeat_timeout_ms, result.describe().c_str());
      }
      on_failure(dead.pos, dead.slot, "heartbeat timeout",
                 result.stderr_output);
      event = true;
    }
    return event;
  };

  int backoff_ms = opts_.poll_min_ms;
  while (!queue.empty() || !active.empty()) {
    bool event = false;

    while (!queue.empty()) {
      const int slot = free_slot();
      if (slot < 0) break;
      const std::size_t next = queue.front();
      queue.pop_front();
      spawn(next, slot);
      event = true;
    }

    // Reap in completion order: every in-flight worker is polled, so a
    // straggler at the head of the spawn order no longer blocks reaping
    // (and retrying, and stealing from) everyone behind it.
    for (std::size_t a = 0; a < active.size();) {
      std::optional<util::Subprocess::Result> result =
          active[a].process->try_wait();
      if (!result) {
        ++a;
        continue;
      }
      Active fin = std::move(active[a]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(a));
      release_slot(fin.slot);
      Track& t = track[fin.pos];
      t.wall_ms += elapsed_ms(t.spawn_time);
      if (result->ok()) {
        on_success(fin.pos);
      } else {
        on_failure(fin.pos, fin.slot, result->describe(),
                   result->stderr_output);
      }
      event = true;
    }

    event = scan_progress() || event;
    event = maybe_steal() || event;

    if (event) {
      backoff_ms = opts_.poll_min_ms;
      continue;  // something changed; see if more work unblocked
    }
    if (active.empty()) continue;  // pending work only; spawn next pass
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, opts_.poll_max_ms);
  }

  // Final shard records, then drop superseded specs from the plan: they
  // have no manifest, and every seed they owned is published by the spec
  // that superseded them.
  for (std::size_t p = 0; p < specs.size(); ++p) {
    ShardStats s;
    s.index = specs[p].index;
    s.stolen_from = specs[p].stolen_from;
    s.supersedes = specs[p].supersedes;
    s.superseded = track[p].state == State::kSuperseded;
    s.attempts = std::max(1, track[p].spawns);
    s.slot = track[p].slot;
    s.wall_ms = track[p].wall_ms;
    s.seeds = static_cast<int>(specs[p].seeds.size());
    stats_.shards.push_back(s);
  }
  std::vector<ShardSpec> surviving;
  surviving.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    if (track[p].state != State::kSuperseded) {
      surviving.push_back(std::move(specs[p]));
    }
  }
  specs = std::move(surviving);
}

}  // namespace lcda::dist
