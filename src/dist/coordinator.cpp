#include "lcda/dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lcda/dist/progress.h"
#include "lcda/dist/protocol.h"
#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/util/subprocess.h"

namespace lcda::dist {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// "seeds 4-7" / "seeds 3" — shard log labels.
std::string seeds_label(const ShardSpec& spec) {
  if (spec.seeds.empty()) return "no seeds";
  const auto [lo, hi] =
      std::minmax_element(spec.seeds.begin(), spec.seeds.end());
  if (*lo == *hi) return "seed " + std::to_string(*lo);
  return "seeds " + std::to_string(*lo) + "-" + std::to_string(*hi);
}

/// The last non-empty stderr line — the part of a crash worth quoting in
/// a one-line retry message (the full capture goes into the final error).
std::string last_line(const std::string& text) {
  std::size_t end = text.find_last_not_of('\n');
  if (end == std::string::npos) return "";
  std::size_t begin = text.find_last_of('\n', end);
  begin = begin == std::string::npos ? 0 : begin + 1;
  return text.substr(begin, end - begin + 1);
}

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// Upper median of an unsorted sample (copies; samples are tiny).
double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// How a shard is doing right now, from the coordinator's point of view.
enum class State { kPending, kRunning, kDone, kSuperseded };

/// Scheduler-side shard record, parallel to the specs vector.
struct Track {
  State state = State::kPending;
  std::set<int> revoked;           // stolen seeds (persisted to revoke file)
  std::set<int> started, done;     // current attempt's progress records
  bool stolen = false;             // phase-1 steal already taken
  int duplicate_pos = -1;          // position of its supersede-duplicate
  Clock::time_point dispatch_time{};  // when the CURRENT spec was handed to
                                      // its worker (not when the resident
                                      // process was forked — an idle-then-
                                      // busy pool worker must not inherit
                                      // stale wall)
  Clock::time_point last_event{};  // when a seed start/done was last
                                   // observed (heartbeats excluded — they
                                   // prove liveness, not progress)
  double done_wall_ms = 0.0;       // sum of finished seeds' walls
  double wall_ms = 0.0;            // busy wall summed across attempts
  int slot = -1;
  int spawns = 0;
};

/// One scheduler slot. Under the pool a slot IS a resident --worker-loop
/// process: `worker` outlives the specs dispatched to it, `lines`
/// reassembles its stdout into protocol replies, and `busy`/`pos` name the
/// spec currently in flight. With the pool off, `worker` is the per-attempt
/// --worker process and exit status is the completion signal.
struct Slot {
  std::unique_ptr<util::Subprocess> worker;
  LineBuffer lines;
  bool busy = false;
  bool banned = false;
  std::size_t pos = 0;     // spec in flight (valid while busy)
  std::set<int> failures;  // distinct shard indices that failed here
};

/// The seeds a spec still owes the merger: its seed list minus the
/// revoked ones (the worker skips those; thief specs own them now).
std::vector<int> owned_seeds(const ShardSpec& spec,
                             const std::set<int>& revoked) {
  std::vector<int> out;
  for (int s : spec.seeds) {
    if (revoked.count(s) == 0) out.push_back(s);
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.worker_command.empty()) {
    throw std::invalid_argument("Coordinator: empty worker_command");
  }
  if (opts_.shard_dir.empty()) {
    throw std::invalid_argument("Coordinator: empty shard_dir");
  }
  if (opts_.max_parallel < 1) {
    throw std::invalid_argument("Coordinator: max_parallel must be >= 1");
  }
  if (opts_.max_retries < 0) {
    throw std::invalid_argument("Coordinator: max_retries must be >= 0");
  }
  if (opts_.steal_threshold < 1.0) {
    throw std::invalid_argument("Coordinator: steal_threshold must be >= 1");
  }
  if (opts_.steal_min_stale_ms < 0) opts_.steal_min_stale_ms = 0;
  if (opts_.poll_min_ms < 1) opts_.poll_min_ms = 1;
  if (opts_.poll_max_ms < opts_.poll_min_ms) {
    opts_.poll_max_ms = opts_.poll_min_ms;
  }
}

void Coordinator::run(std::vector<ShardSpec>& specs) {
  obs::Span run_span("dist.run");
  std::error_code ec;
  fs::create_directories(opts_.shard_dir, ec);
  if (ec) {
    throw std::runtime_error("Coordinator: cannot create shard dir " +
                             opts_.shard_dir + ": " + ec.message());
  }

  stats_ = Stats{};
  stats_.planned = static_cast<int>(specs.size());

  std::vector<Track> track(specs.size());
  std::deque<std::size_t> queue;
  std::vector<Slot> slots(static_cast<std::size_t>(opts_.max_parallel));

  // Shard "names" (spec.index) survive steals: new specs take fresh
  // indices past every existing one, so file stems never collide.
  int next_index = 0;
  for (const ShardSpec& spec : specs) {
    next_index = std::max(next_index, spec.index + 1);
  }

  const auto stem = [&](std::size_t p) {
    return opts_.shard_dir + "/shard-" + std::to_string(specs[p].index);
  };

  for (std::size_t p = 0; p < specs.size(); ++p) {
    specs[p].result_path = stem(p) + "-result.json";
    specs[p].revoke_path = stem(p) + "-revoke.json";
    specs[p].heartbeat_ms = opts_.heartbeat_ms;
    // Leftovers from a previous plan in a reused directory must not be
    // mistaken for this run's output (the checksum would catch a
    // different study, but not a re-run of the same one).
    fs::remove(specs[p].result_path, ec);
    fs::remove(specs[p].revoke_path, ec);
    queue.push_back(p);
  }

  const auto free_slot = [&]() -> int {
    for (int s = 0; s < opts_.max_parallel; ++s) {
      const Slot& slot = slots[static_cast<std::size_t>(s)];
      if (!slot.busy && !slot.banned) return s;
    }
    return -1;
  };
  const auto idle_slots = [&] {
    int n = 0;
    for (const Slot& slot : slots) n += !slot.busy && !slot.banned;
    return n;
  };
  const auto usable_slots = [&] {
    int n = 0;
    for (const Slot& slot : slots) n += !slot.banned;
    return n;
  };
  const auto any_busy = [&] {
    for (const Slot& slot : slots) {
      if (slot.busy) return true;
    }
    return false;
  };

  /// Forks a fresh resident --worker-loop process into `slot`, replacing
  /// whatever was there (a dead or killed predecessor).
  const auto launch_pool_worker = [&](Slot& slot) {
    obs::Span span("dist.respawn");
    std::vector<std::string> argv = opts_.worker_command;
    argv.push_back("--worker-loop");
    util::Subprocess::Options popts;
    popts.pipe_stdin = true;
    popts.pipe_stdout = true;
    slot.worker = std::make_unique<util::Subprocess>(std::move(argv), popts);
    slot.lines = LineBuffer{};
    ++stats_.pool_workers;
  };

  /// Hands spec `p` to slot `slot_idx`: writes the spec file and either
  /// streams a `run` command to the slot's resident worker (spawning or
  /// respawning it as needed) or forks a one-shot --worker process.
  const auto dispatch = [&](std::size_t p, int slot_idx) {
    obs::Span span("dist.dispatch");
    Slot& slot = slots[static_cast<std::size_t>(slot_idx)];
    ShardSpec& spec = specs[p];
    const std::string spec_path = stem(p) + "-spec.json";
    spec.progress_path =
        stem(p) + "-progress-a" + std::to_string(spec.attempt) + ".jsonl";
    fs::remove(spec.progress_path, ec);
    if (opts_.trace_spans) {
      // Per-attempt, like the progress sidecar: a retry must not clobber
      // (or be mistaken for) the attempt that died.
      spec.trace_path =
          stem(p) + "-trace-a" + std::to_string(spec.attempt) + ".json";
      fs::remove(spec.trace_path, ec);
    }
    save_shard_spec(spec, spec_path);
    if (opts_.use_worker_pool) {
      WorkerCommand cmd;
      cmd.kind = WorkerCommand::Kind::kRun;
      cmd.spec_path = spec_path;
      const std::string line = encode_worker_command(cmd);
      // A worker that died while idle surfaces here as a broken pipe; one
      // respawn covers it. Failing twice in a row means workers cannot be
      // created at all, which is fatal exactly like a failed fork was.
      bool sent = false;
      for (int tries = 0; tries < 2 && !sent; ++tries) {
        if (!slot.worker || slot.worker->waited()) launch_pool_worker(slot);
        sent = slot.worker->write_stdin(line);
        if (!sent) slot.worker.reset();
      }
      if (!sent) {
        throw std::runtime_error(
            "Coordinator: cannot keep a resident worker alive on slot " +
            std::to_string(slot_idx));
      }
    } else {
      std::vector<std::string> argv = opts_.worker_command;
      argv.push_back("--worker=" + spec_path);
      slot.worker = std::make_unique<util::Subprocess>(std::move(argv));
    }
    slot.busy = true;
    slot.pos = p;
    Track& t = track[p];
    t.state = State::kRunning;
    t.started.clear();
    t.done.clear();
    t.slot = slot_idx;
    t.dispatch_time = Clock::now();
    t.last_event = t.dispatch_time;
    t.done_wall_ms = 0.0;
    ++t.spawns;
    ++stats_.spawned;
    if (opts_.verbose) {
      std::fprintf(stderr,
                   "[dist] shard %d/%d (%s, %s, attempt %d) -> pid %ld "
                   "slot %d%s\n",
                   spec.index, spec.count,
                   std::string(core::strategy_name(spec.strategy)).c_str(),
                   seeds_label(spec).c_str(), spec.attempt,
                   static_cast<long>(slot.worker->pid()), slot_idx,
                   opts_.use_worker_pool ? " (pool)" : "");
    }
  };

  /// Stops the worker executing shard `p` (if any) and frees its slot.
  /// Under the pool this kills the resident process mid-spec — the next
  /// dispatch to the slot respawns a replacement.
  const auto stop_worker = [&](std::size_t p) {
    for (Slot& slot : slots) {
      if (!slot.busy || slot.pos != p) continue;
      if (slot.worker) (void)slot.worker->stop(/*grace_ms=*/500);
      slot.worker.reset();
      slot.lines = LineBuffer{};
      slot.busy = false;
      return;
    }
  };

  const auto drop_from_queue = [&](std::size_t p) {
    queue.erase(std::remove(queue.begin(), queue.end(), p), queue.end());
  };

  /// A shard's worker was stopped or skipped because every seed it would
  /// have published is covered by another spec's manifest (a supersede
  /// duplicate, or the parent of a now-redundant duplicate).
  const auto supersede = [&](std::size_t p, const char* why) {
    Track& t = track[p];
    if (t.state == State::kRunning) stop_worker(p);
    if (t.state == State::kPending) drop_from_queue(p);
    t.state = State::kSuperseded;
    ++stats_.superseded;
    if (opts_.verbose) {
      std::fprintf(stderr, "[dist] shard %d superseded (%s)\n",
                   specs[p].index, why);
    }
  };

  const auto on_success = [&](std::size_t p) {
    Track& t = track[p];
    t.state = State::kDone;
    // Final progress read: the finished shard's per-seed walls anchor the
    // straggler detector's reference scale even when completion arrived
    // between progress scans.
    if (!specs[p].progress_path.empty()) {
      const ProgressSnapshot snap = read_progress(specs[p].progress_path);
      t.started = snap.started;
      t.done = snap.done;
      t.done_wall_ms = snap.done_wall_ms;
    }
    if (opts_.verbose) {
      std::fprintf(stderr, "[dist] shard %d done\n", specs[p].index);
    }
    // A whole-shard duplicate landing first covers its parent; the parent
    // landing first makes an unfinished duplicate redundant. Either way
    // the slower copy is stopped and erased from the plan — the merger's
    // per-seed arbitration handles the narrow race where both published.
    if (specs[p].supersedes && specs[p].stolen_from >= 0) {
      for (std::size_t q = 0; q < specs.size(); ++q) {
        if (specs[q].index == specs[p].stolen_from &&
            (track[q].state == State::kRunning ||
             track[q].state == State::kPending)) {
          supersede(q, "duplicate finished first");
        }
      }
    }
    if (t.duplicate_pos >= 0) {
      const std::size_t d = static_cast<std::size_t>(t.duplicate_pos);
      if (track[d].state == State::kRunning ||
          track[d].state == State::kPending) {
        supersede(d, "original finished first");
      }
    }
  };

  const auto on_failure = [&](std::size_t p, int slot_idx,
                              const std::string& described,
                              const std::string& stderr_output) {
    Track& t = track[p];
    // Health accounting: the slot (stand-in for a host in the multi-host
    // era) remembers which distinct shards died on it; repeat offenders
    // are banlisted for the rest of the study, but never below one
    // usable slot.
    if (slot_idx >= 0) {
      Slot& slot = slots[static_cast<std::size_t>(slot_idx)];
      slot.failures.insert(specs[p].index);
      if (static_cast<int>(slot.failures.size()) >= opts_.banlist_after &&
          !slot.banned && usable_slots() > 1) {
        slot.banned = true;
        stats_.banlisted_slots.push_back(slot_idx);
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] slot %d banlisted after %zu distinct shard "
                       "failure(s)\n",
                       slot_idx, slot.failures.size());
        }
      }
    }
    // A parent with a live (or finished) whole-shard duplicate owes the
    // merger nothing — the duplicate owns the same seeds. Skip the retry.
    if (t.duplicate_pos >= 0 &&
        track[static_cast<std::size_t>(t.duplicate_pos)].state !=
            State::kSuperseded) {
      t.state = State::kSuperseded;
      ++stats_.superseded;
      if (opts_.verbose) {
        std::fprintf(stderr,
                     "[dist] shard %d failed (%s) but its duplicate covers "
                     "it — not retrying\n",
                     specs[p].index, described.c_str());
      }
      return;
    }
    // attempt N failed; N+1 is the next one. max_retries bounds the
    // retries, so attempts 0..max_retries are allowed.
    if (specs[p].attempt < opts_.max_retries) {
      ++specs[p].attempt;
      ++stats_.retries;
      if (opts_.verbose) {
        const std::string line = last_line(stderr_output);
        std::fprintf(stderr,
                     "[dist] shard %d failed (%s)%s%s — retrying "
                     "(attempt %d/%d)\n",
                     specs[p].index, described.c_str(),
                     line.empty() ? "" : ": ", line.c_str(), specs[p].attempt,
                     opts_.max_retries);
      }
      t.state = State::kPending;
      queue.push_back(p);
      return;
    }
    throw std::runtime_error(
        "Coordinator: shard " + std::to_string(specs[p].index) + " failed (" +
        described + ") after " + std::to_string(specs[p].attempt + 1) +
        " attempt(s); worker stderr:\n" + stderr_output);
  };

  /// Creates a steal spec owning `seeds`, inheriting the parent's study
  /// identity, and queues it for the next idle slot.
  const auto dispatch_steal = [&](std::size_t parent, std::vector<int> seeds,
                                  bool supersedes) {
    ShardSpec spec;
    spec.index = next_index++;
    spec.count = specs[parent].count;
    spec.mode = specs[parent].mode;
    spec.scenario = specs[parent].scenario;
    spec.strategy = specs[parent].strategy;
    spec.episodes = specs[parent].episodes;
    spec.total_seeds = specs[parent].total_seeds;
    spec.seeds = std::move(seeds);
    spec.threshold = specs[parent].threshold;
    spec.threshold_fraction = specs[parent].threshold_fraction;
    spec.study_slot = specs[parent].study_slot;
    spec.stolen_from = specs[parent].index;
    spec.supersedes = supersedes;
    specs.push_back(std::move(spec));
    track.emplace_back();
    const std::size_t p = specs.size() - 1;
    specs[p].result_path = stem(p) + "-result.json";
    specs[p].revoke_path = stem(p) + "-revoke.json";
    specs[p].heartbeat_ms = opts_.heartbeat_ms;
    fs::remove(specs[p].result_path, ec);
    fs::remove(specs[p].revoke_path, ec);
    queue.push_back(p);
    ++stats_.steals;
    stats_.stolen_seeds += static_cast<int>(specs[p].seeds.size());
    return p;
  };

  /// One straggler-mitigation pass. A shard is a straggler when its
  /// progress has STALLED: no seed started or finished for longer than
  /// steal_threshold x the observed median per-seed wall (floored by
  /// steal_min_stale_ms so scan jitter cannot trip it). Healthy shards
  /// racing to the finish keep emitting seed events at per-seed cadence
  /// and never look stalled — even on an oversubscribed box where every
  /// wall estimate is inflated by CPU queueing — while a shard grinding
  /// inside one slow seed goes quiet (heartbeats keep it alive, not
  /// fresh: they are excluded from last_event on purpose). Phase 1 steals
  /// its not-yet-started seeds onto idle slots; phase 2 duplicates the
  /// started remainder as a supersede race. At most one steal per pass
  /// keeps the policy easy to reason about; the next scan can steal
  /// again.
  const auto maybe_steal = [&] {
    if (!opts_.enable_steal || !queue.empty() || free_slot() < 0) return false;

    struct Candidate {
      std::size_t pos;
      double stale_ms;
      std::vector<int> owned;
    };
    std::vector<Candidate> running;
    for (const Slot& slot : slots) {
      if (!slot.busy) continue;
      // A supersede-duplicate is never itself a steal source: it exists
      // only as the second copy in a publish race the original is still
      // running. Allowing it would chain duplicates-of-duplicates — every
      // copy of a genuinely slow seed stalls past the bar, and each
      // would spawn the next (duplicate_pos only guards the immediate
      // parent) — so a slow seed could breed specs without bound instead
      // of racing exactly two copies.
      if (specs[slot.pos].supersedes) continue;
      const Track& t = track[slot.pos];
      Candidate c;
      c.pos = slot.pos;
      c.stale_ms = elapsed_ms(t.last_event);
      c.owned = owned_seeds(specs[slot.pos], t.revoked);
      if (t.done.size() < c.owned.size()) running.push_back(std::move(c));
    }
    if (running.empty()) return false;

    // Reference scale: median of the shards' observed mean per-seed walls
    // (any state — finished shards anchor it via on_success's final
    // progress read). Without a single finished seed anywhere there is no
    // scale to judge "stalled" against, and only the lone-shard split
    // below may act.
    std::vector<double> seed_walls;
    for (const Track& t : track) {
      if (!t.done.empty() && t.done_wall_ms > 0.0) {
        seed_walls.push_back(t.done_wall_ms /
                             static_cast<double>(t.done.size()));
      }
    }
    const double reference = seed_walls.empty() ? 0.0 : median_of(seed_walls);

    // Most-stalled first.
    std::sort(running.begin(), running.end(), [](const auto& x, const auto& y) {
      return x.stale_ms > y.stale_ms;
    });
    for (const Candidate& c : running) {
      // "Stalled" judges the gap between OBSERVED events, so it needs at
      // least one: before the first start event the gap only measures
      // dispatch-to-startup latency, and flagging on that would revoke
      // seeds from healthy-but-queued workers (each revocation spawning a
      // child that is equally slow to start — another unbounded chain). A
      // worker wedged before its first event is the heartbeat reaper's
      // case, not the stealer's.
      ++stats_.steal_considered;
      const bool judged = reference > 0.0 && !track[c.pos].started.empty();
      const bool over_bar =
          judged && c.stale_ms > opts_.steal_threshold * reference;
      const bool stalled =
          over_bar &&
          c.stale_ms > static_cast<double>(opts_.steal_min_stale_ms);
      if (over_bar && !stalled) ++stats_.steal_suppressed_min_stale;
      // A lone running shard with idle slots and no reference point:
      // splitting its unstarted seeds is pure win as long as it has
      // parallelizable seeds left (phase 1 only — duplicating work the
      // shard is actively progressing through is not).
      const bool lone_split = running.size() == 1 && reference == 0.0;
      if (!stalled && !lone_split) continue;

      // No reference into track across dispatch_steal: it grows the
      // vector and would invalidate one.
      std::vector<int> unstarted;
      for (int s : c.owned) {
        if (track[c.pos].started.count(s) == 0) unstarted.push_back(s);
      }

      if (!unstarted.empty()) {
        // Phase 1: revoke the unstarted seeds, split them over the idle
        // slots. The worker re-reads the revocation file before each
        // seed, so it simply never runs them.
        obs::Span steal_span("dist.steal");
        for (int s : unstarted) track[c.pos].revoked.insert(s);
        write_revocations(specs[c.pos].revoke_path, track[c.pos].revoked);
        const int idle = idle_slots();
        const std::size_t chunks =
            std::min(unstarted.size(), static_cast<std::size_t>(idle));
        std::vector<int> created;
        for (std::size_t ch = 0; ch < chunks; ++ch) {
          const std::size_t begin = ch * unstarted.size() / chunks;
          const std::size_t end = (ch + 1) * unstarted.size() / chunks;
          const std::size_t p = dispatch_steal(
              c.pos,
              std::vector<int>(unstarted.begin() + begin,
                               unstarted.begin() + end),
              /*supersedes=*/false);
          created.push_back(specs[p].index);
        }
        track[c.pos].stolen = true;
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] stealing %zu not-yet-started seed(s) from "
                       "shard %d into %zu new shard(s)\n",
                       unstarted.size(), specs[c.pos].index, created.size());
        }
        return true;
      }

      if (stalled && track[c.pos].duplicate_pos < 0 && !c.owned.empty() &&
          track[c.pos].done.size() < c.owned.size()) {
        // Phase 2: everything left is already started (or finished but
        // unpublished), so re-dispatch the shard's whole owed seed set as
        // a supersede duplicate; whichever copy publishes first wins and
        // the other worker is stopped.
        obs::Span steal_span("dist.steal");
        const std::size_t d =
            dispatch_steal(c.pos, c.owned, /*supersedes=*/true);
        track[c.pos].duplicate_pos = static_cast<int>(d);
        if (opts_.verbose) {
          std::fprintf(stderr,
                       "[dist] duplicating shard %d's remaining %zu seed(s) "
                       "as shard %d (supersede race)\n",
                       specs[c.pos].index, c.owned.size(), specs[d].index);
        }
        return true;
      }
    }
    return false;
  };

  /// Resolves the in-flight spec of a busy slot from a protocol reply.
  const auto resolve_reply = [&](int slot_idx, Slot& slot,
                                 const WorkerReply& reply,
                                 const std::string& worker_stderr) {
    slot.busy = false;
    Track& t = track[slot.pos];
    t.wall_ms += elapsed_ms(t.dispatch_time);
    if (reply.kind == WorkerReply::Kind::kDone) {
      on_success(slot.pos);
    } else {
      on_failure(slot.pos, slot_idx,
                 reply.reason.empty() ? "worker error" : reply.reason,
                 worker_stderr);
    }
  };

  /// Runs every complete reply line buffered for a pool slot.
  /// `dead_stderr` non-null means the worker is already reaped — its
  /// captured stderr stands in for take_stderr().
  const auto drain_replies = [&](int slot_idx, Slot& slot,
                                 const std::string* dead_stderr) {
    bool event = false;
    while (const std::optional<std::string> line = slot.lines.next_line()) {
      const std::optional<WorkerReply> reply = parse_worker_reply(*line);
      // Stray stdout noise (or a reply kind we did not ask for) is not a
      // scheduling signal; real worker trouble surfaces as a `failed`
      // reply, a process exit, or heartbeat staleness.
      if (!reply || reply->kind == WorkerReply::Kind::kPong) continue;
      if (!slot.busy) continue;
      // Attribute the worker's accumulated stderr to THIS spec before the
      // slot takes another one.
      const std::string worker_stderr =
          dead_stderr != nullptr ? *dead_stderr : slot.worker->take_stderr();
      resolve_reply(slot_idx, slot, *reply, worker_stderr);
      event = true;
    }
    return event;
  };

  /// Completion scan: one pass over the slots that multiplexes the two
  /// completion signals. For live pool workers, stdout is drained through
  /// the line buffer and each protocol reply resolves the in-flight spec.
  /// Process exit is abnormal under the pool (a healthy resident worker
  /// replies and stays alive) — except that a reply written just before
  /// death still counts, so the final drained stdout is processed before
  /// the exit is judged; without the pool, exit IS the completion signal.
  const auto scan_completions = [&] {
    bool event = false;
    for (int s = 0; s < opts_.max_parallel; ++s) {
      Slot& slot = slots[static_cast<std::size_t>(s)];
      if (!slot.worker) continue;
      const std::optional<util::Subprocess::Result> result =
          slot.worker->try_wait();
      if (result) {
        const long pid = static_cast<long>(slot.worker->pid());
        if (opts_.use_worker_pool) {
          slot.lines.feed(slot.worker->read_stdout());
          event = drain_replies(s, slot, &result->stderr_output) || event;
        }
        slot.worker.reset();
        slot.lines = LineBuffer{};
        if (slot.busy) {
          slot.busy = false;
          Track& t = track[slot.pos];
          t.wall_ms += elapsed_ms(t.dispatch_time);
          if (!opts_.use_worker_pool && result->ok()) {
            on_success(slot.pos);
          } else {
            if (opts_.use_worker_pool && opts_.verbose) {
              std::fprintf(stderr,
                           "[dist] resident worker pid %ld died mid-spec "
                           "(%s) — will respawn\n",
                           pid, result->describe().c_str());
            }
            on_failure(slot.pos, s, result->describe(),
                       result->stderr_output);
          }
          event = true;
        } else if (opts_.use_worker_pool && opts_.verbose &&
                   result->exit_code != 0) {
          std::fprintf(stderr,
                       "[dist] idle resident worker pid %ld exited (%s)\n",
                       pid, result->describe().c_str());
        }
        continue;
      }
      if (!opts_.use_worker_pool) continue;  // completion = exit only
      slot.lines.feed(slot.worker->read_stdout());
      event = drain_replies(s, slot, nullptr) || event;
    }
    return event;
  };

  /// Progress scan: refresh per-seed knowledge and reap workers whose
  /// progress file has gone stale (alive but wedged — a crash would have
  /// surfaced through try_wait already).
  const auto scan_progress = [&] {
    bool event = false;
    for (int s = 0; s < opts_.max_parallel; ++s) {
      Slot& slot = slots[static_cast<std::size_t>(s)];
      if (!slot.busy || !slot.worker) continue;
      Track& t = track[slot.pos];
      const ShardSpec& spec = specs[slot.pos];
      if (!spec.progress_path.empty()) {
        const ProgressSnapshot snap = read_progress(spec.progress_path);
        if (snap.started.size() != t.started.size() ||
            snap.done.size() != t.done.size()) {
          t.last_event = Clock::now();
        }
        t.started = snap.started;
        t.done = snap.done;
        t.done_wall_ms = snap.done_wall_ms;
      }
      bool stale = false;
      if (opts_.heartbeat_timeout_ms > 0 && opts_.heartbeat_ms > 0) {
        std::error_code mec;
        const auto mtime = fs::last_write_time(spec.progress_path, mec);
        if (!mec) {
          const auto age = fs::file_time_type::clock::now() - mtime;
          stale = std::chrono::duration_cast<std::chrono::milliseconds>(age)
                      .count() > opts_.heartbeat_timeout_ms;
        } else {
          // No progress file yet: measure from the CURRENT spec's
          // dispatch (a worker that never even opened its sidecar is just
          // as dead). Dispatch, not process spawn — a resident worker
          // that sat idle before taking this spec is not late.
          stale = elapsed_ms(t.dispatch_time) >
                  static_cast<double>(opts_.heartbeat_timeout_ms);
        }
      }
      if (!stale) continue;
      // Declared dead: stop it (TERM -> grace -> KILL) and route the
      // shard through the ordinary failure path without waiting for a
      // voluntary exit. Under the pool the resident process dies with its
      // spec; the slot respawns a replacement on its next dispatch.
      const long pid = static_cast<long>(slot.worker->pid());
      const util::Subprocess::Result result = slot.worker->stop(500);
      slot.worker.reset();
      slot.lines = LineBuffer{};
      slot.busy = false;
      t.wall_ms += elapsed_ms(t.dispatch_time);
      ++stats_.dead_workers;
      if (opts_.verbose) {
        std::fprintf(stderr,
                     "[dist] shard %d worker pid %ld stale (no heartbeat "
                     "for > %d ms) — stopped (%s)\n",
                     spec.index, pid, opts_.heartbeat_timeout_ms,
                     result.describe().c_str());
      }
      on_failure(slot.pos, s, "heartbeat timeout", result.stderr_output);
      event = true;
    }
    return event;
  };

  int backoff_ms = opts_.poll_min_ms;
  while (!queue.empty() || any_busy()) {
    bool event = false;

    while (!queue.empty()) {
      const int slot = free_slot();
      if (slot < 0) break;
      const std::size_t next = queue.front();
      queue.pop_front();
      dispatch(next, slot);
      event = true;
    }

    // Reap in completion order: every in-flight worker is polled, so a
    // straggler at the head of the dispatch order never blocks reaping
    // (and retrying, and stealing from) everyone behind it.
    event = scan_completions() || event;
    event = scan_progress() || event;
    event = maybe_steal() || event;

    if (event) {
      backoff_ms = opts_.poll_min_ms;
      continue;  // something changed; see if more work unblocked
    }
    if (!any_busy()) continue;  // pending work only; dispatch next pass
    // Not a blind sleep: block on the live workers' pipes so a pooled
    // reply, stderr output, or the EOF of an exit wakes the loop the
    // moment it happens. The backoff only paces the purely time-based
    // scans (heartbeat staleness, straggler estimates) between wakes.
    std::vector<int> wake_fds;
    for (const Slot& slot : slots) {
      if (!slot.worker || slot.worker->waited()) continue;
      for (const int fd : slot.worker->poll_fds()) wake_fds.push_back(fd);
    }
    if (util::Subprocess::wait_any_readable(wake_fds, backoff_ms)) {
      backoff_ms = opts_.poll_min_ms;
    } else {
      backoff_ms = std::min(backoff_ms * 2, opts_.poll_max_ms);
    }
  }

  // Drain the pool: ask each surviving resident worker to exit on its own
  // (`shutdown` + stdin EOF), give the fleet a short shared grace window,
  // then escalate to stop() for any that linger. Workers are gone before
  // run() returns, so the caller can delete the shard directory safely.
  if (opts_.use_worker_pool) {
    for (Slot& slot : slots) {
      if (!slot.worker || slot.worker->waited()) {
        slot.worker.reset();
        continue;
      }
      WorkerCommand cmd;
      cmd.kind = WorkerCommand::Kind::kShutdown;
      (void)slot.worker->write_stdin(encode_worker_command(cmd));
      slot.worker->close_stdin();
    }
    // Give quick exits one poll, then escalate. An idle resident holds no
    // in-flight state, so there is nothing a long grace window could
    // save — stop(0) (TERM, KILL backstop, reap) collapses a straggling
    // worker's drain to one blocking reap instead of polling the fleet
    // down over several scheduler quanta.
    for (Slot& slot : slots) {
      if (slot.worker && !slot.worker->waited() && !slot.worker->try_wait()) {
        (void)util::Subprocess::wait_any_readable(slot.worker->poll_fds(), 1);
        if (!slot.worker->try_wait()) (void)slot.worker->stop(/*grace_ms=*/0);
      }
      slot.worker.reset();
    }
  }

  // Final shard records, then drop superseded specs from the plan: they
  // have no manifest, and every seed they owned is published by the spec
  // that superseded them.
  for (std::size_t p = 0; p < specs.size(); ++p) {
    ShardStats s;
    s.index = specs[p].index;
    s.stolen_from = specs[p].stolen_from;
    s.supersedes = specs[p].supersedes;
    s.superseded = track[p].state == State::kSuperseded;
    s.attempts = std::max(1, track[p].spawns);
    s.slot = track[p].slot;
    s.wall_ms = track[p].wall_ms;
    s.seeds = static_cast<int>(specs[p].seeds.size());
    stats_.shards.push_back(s);
  }
  std::vector<ShardSpec> surviving;
  surviving.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    if (track[p].state != State::kSuperseded) {
      surviving.push_back(std::move(specs[p]));
    }
  }
  specs = std::move(surviving);

  // Mirror the scheduling outcome into the metrics registry once, at the
  // end — cheap, and it keeps the hot scheduling loop free of metric
  // plumbing. Stats itself stays authoritative when the registry is off.
  if (obs::Registry::instance().enabled()) {
    obs::add_counter("dist.shards_planned", stats_.planned);
    obs::add_counter("dist.dispatches", stats_.spawned);
    obs::add_counter("dist.pool_workers", stats_.pool_workers);
    obs::add_counter("dist.retries", stats_.retries);
    obs::add_counter("dist.steals", stats_.steals);
    obs::add_counter("dist.stolen_seeds", stats_.stolen_seeds);
    obs::add_counter("dist.steal_considered", stats_.steal_considered);
    obs::add_counter("dist.steal_suppressed_min_stale",
                     stats_.steal_suppressed_min_stale);
    obs::add_counter("dist.superseded", stats_.superseded);
    obs::add_counter("dist.dead_workers", stats_.dead_workers);
    obs::add_counter("dist.banlisted_slots",
                     static_cast<long long>(stats_.banlisted_slots.size()));
  }
}

}  // namespace lcda::dist
