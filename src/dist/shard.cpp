#include "lcda/dist/shard.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lcda/core/report.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"
#include "lcda/util/thread_pool.h"

namespace lcda::dist {

namespace {

constexpr std::string_view kSpecFormat = "lcda-shard-spec-v1";

std::string hex64(std::uint64_t v) { return "0x" + util::hex_u64(v); }

/// The identity payload behind shard_spec_checksum: everything that shapes
/// the worker's computation, nothing that merely locates its files.
util::Json identity_json(const ShardSpec& spec) {
  util::Json j = util::Json::object();
  j["mode"] = std::string(shard_mode_name(spec.mode));
  j["scenario"] = core::scenario_to_json(spec.scenario,
                                         /*include_defaults=*/true);
  j["strategy"] = std::string(core::strategy_name(spec.strategy));
  j["episodes"] = spec.episodes;
  j["total_seeds"] = spec.total_seeds;
  util::Json seeds = util::Json::array();
  for (int s : spec.seeds) seeds.push_back(s);
  j["seeds"] = seeds;
  // NaN has no JSON literal; encode "no threshold" as its absence.
  if (!std::isnan(spec.threshold)) j["threshold"] = spec.threshold;
  j["threshold_fraction"] = spec.threshold_fraction;
  return j;
}

}  // namespace

std::string_view shard_mode_name(ShardMode m) {
  switch (m) {
    case ShardMode::kRuns: return "runs";
    case ShardMode::kAggregate: return "aggregate";
    case ShardMode::kSpeedup: return "speedup";
  }
  return "?";
}

ShardMode shard_mode_from_name(std::string_view name) {
  if (name == "runs") return ShardMode::kRuns;
  if (name == "aggregate") return ShardMode::kAggregate;
  if (name == "speedup") return ShardMode::kSpeedup;
  throw std::invalid_argument("shard_mode_from_name: unknown mode \"" +
                              std::string(name) + "\"");
}

util::Json shard_spec_to_json(const ShardSpec& spec) {
  util::Json j = util::Json::object();
  j["format"] = kSpecFormat;
  j["index"] = spec.index;
  j["count"] = spec.count;
  j["mode"] = std::string(shard_mode_name(spec.mode));
  // The scenario travels in its sparse (non-default) form, the exact shape
  // scenario round-trip guarantees bit-exact reloads for.
  j["scenario"] = core::scenario_to_json(spec.scenario);
  j["strategy"] = std::string(core::strategy_name(spec.strategy));
  j["episodes"] = spec.episodes;
  j["total_seeds"] = spec.total_seeds;
  util::Json seeds = util::Json::array();
  for (int s : spec.seeds) seeds.push_back(s);
  j["seeds"] = seeds;
  if (!std::isnan(spec.threshold)) j["threshold"] = spec.threshold;
  j["threshold_fraction"] = spec.threshold_fraction;
  // The per-study cache-file key, so a shard spec in a log names the cache
  // files its runs will touch (aggregate/runs modes only — the speedup
  // study spans two strategies and both budgets).
  if (spec.mode != ShardMode::kSpeedup) {
    j["study_fingerprint"] = hex64(core::study_fingerprint(
        spec.scenario.config, spec.strategy, spec.episodes));
  }
  j["spec_checksum"] = hex64(shard_spec_checksum(spec));
  j["result_path"] = spec.result_path;
  // Scheduling bookkeeping travels outside the identity checksum: two
  // specs that compute the same seeds are the same study slice no matter
  // where their sidecars live or which shard they were stolen from.
  if (spec.study_slot != 0) j["study_slot"] = spec.study_slot;
  if (!spec.progress_path.empty()) j["progress_path"] = spec.progress_path;
  if (!spec.revoke_path.empty()) j["revoke_path"] = spec.revoke_path;
  if (!spec.trace_path.empty()) j["trace_path"] = spec.trace_path;
  if (spec.heartbeat_ms != 0) j["heartbeat_ms"] = spec.heartbeat_ms;
  if (spec.stolen_from >= 0) j["stolen_from"] = spec.stolen_from;
  if (spec.supersedes) j["supersedes"] = true;
  if (spec.fail_first_attempt) j["fail_first_attempt"] = true;
  if (spec.fail_attempts != 0) j["fail_attempts"] = spec.fail_attempts;
  j["attempt"] = spec.attempt;
  return j;
}

ShardSpec shard_spec_from_json(const util::Json& j) {
  if (!j.is_object() || !j.contains("format") ||
      j.at("format").as_string() != kSpecFormat) {
    throw std::invalid_argument(std::string("shard_spec_from_json: not a ") +
                                std::string(kSpecFormat) + " document");
  }
  ShardSpec spec;
  spec.index = static_cast<int>(j.at("index").as_int());
  spec.count = static_cast<int>(j.at("count").as_int());
  spec.mode = shard_mode_from_name(j.at("mode").as_string());
  spec.scenario = core::scenario_from_json(j.at("scenario"));
  spec.strategy = core::strategy_from_name(j.at("strategy").as_string());
  spec.episodes = static_cast<int>(j.at("episodes").as_int());
  spec.total_seeds = static_cast<int>(j.at("total_seeds").as_int());
  spec.seeds.clear();
  for (const util::Json& s : j.at("seeds").elements()) {
    spec.seeds.push_back(static_cast<int>(s.as_int()));
  }
  if (j.contains("threshold")) spec.threshold = j.at("threshold").as_double();
  spec.threshold_fraction = j.at("threshold_fraction").as_double();
  spec.result_path = j.at("result_path").as_string();
  if (j.contains("study_slot")) {
    spec.study_slot = static_cast<int>(j.at("study_slot").as_int());
  }
  if (j.contains("progress_path")) {
    spec.progress_path = j.at("progress_path").as_string();
  }
  if (j.contains("revoke_path")) {
    spec.revoke_path = j.at("revoke_path").as_string();
  }
  if (j.contains("trace_path")) {
    spec.trace_path = j.at("trace_path").as_string();
  }
  if (j.contains("heartbeat_ms")) {
    spec.heartbeat_ms = static_cast<int>(j.at("heartbeat_ms").as_int());
  }
  if (j.contains("stolen_from")) {
    spec.stolen_from = static_cast<int>(j.at("stolen_from").as_int());
  }
  if (j.contains("supersedes")) {
    spec.supersedes = j.at("supersedes").as_bool();
  }
  if (j.contains("fail_first_attempt")) {
    spec.fail_first_attempt = j.at("fail_first_attempt").as_bool();
  }
  if (j.contains("fail_attempts")) {
    spec.fail_attempts = static_cast<int>(j.at("fail_attempts").as_int());
  }
  spec.attempt = static_cast<int>(j.at("attempt").as_int());
  // A spec edited out from under its checksum must fail before it can
  // produce a manifest the merger would then reject more confusingly.
  if (j.contains("spec_checksum") &&
      j.at("spec_checksum").as_string() != hex64(shard_spec_checksum(spec))) {
    throw std::invalid_argument(
        "shard_spec_from_json: spec_checksum does not match the spec body");
  }
  return spec;
}

ShardSpec load_shard_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_shard_spec: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return shard_spec_from_json(util::Json::parse(buffer.str()));
}

void save_shard_spec(const ShardSpec& spec, const std::string& path) {
  core::write_json_file(shard_spec_to_json(spec), path);
}

std::uint64_t shard_spec_checksum(const ShardSpec& spec) {
  return util::fnv1a64(identity_json(spec).dump());
}

std::vector<ShardSpec> plan_shards(const core::Scenario& scenario,
                                   ShardMode mode,
                                   const std::vector<StrategyStudy>& strategies,
                                   int seeds, int shards, double threshold,
                                   double threshold_fraction) {
  if (seeds < 1) throw std::invalid_argument("plan_shards: seeds must be >= 1");
  if (shards < 1) throw std::invalid_argument("plan_shards: shards must be >= 1");
  if (strategies.empty()) {
    throw std::invalid_argument("plan_shards: no strategies");
  }

  std::vector<ShardSpec> plan;
  int index = 0;
  int slot = 0;
  for (const StrategyStudy& study : strategies) {
    const std::size_t chunks = static_cast<std::size_t>(
        std::min(shards, seeds));
    for (std::size_t c = 0; c < chunks; ++c) {
      const util::ChunkRange range =
          util::chunk_range(static_cast<std::size_t>(seeds), chunks, c);
      ShardSpec spec;
      spec.index = index++;
      spec.mode = mode;
      spec.scenario = scenario;
      spec.strategy = study.strategy;
      spec.episodes = study.episodes;
      spec.total_seeds = seeds;
      spec.study_slot = slot;
      spec.threshold = threshold;
      spec.threshold_fraction = threshold_fraction;
      for (std::size_t s = range.begin; s < range.end; ++s) {
        spec.seeds.push_back(static_cast<int>(s));
      }
      plan.push_back(std::move(spec));
    }
    // The speedup study has no per-strategy axis: one pass over the seeds.
    if (mode == ShardMode::kSpeedup) break;
    ++slot;
  }
  for (ShardSpec& spec : plan) spec.count = static_cast<int>(plan.size());
  return plan;
}

}  // namespace lcda::dist
