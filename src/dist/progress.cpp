#include "lcda/dist/progress.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lcda/util/json_lite.h"

namespace lcda::dist {

ProgressWriter::ProgressWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("ProgressWriter: cannot open " + path_);
  }
}

ProgressWriter::~ProgressWriter() {
  stop_heartbeats();
  if (fd_ >= 0) ::close(fd_);
}

void ProgressWriter::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  // One write() per record: O_APPEND makes concurrent appends land whole,
  // so the reader can only ever see a torn *final* line after a crash.
  (void)!::write(fd_, line.data(), line.size());
}

void ProgressWriter::begin(int attempt) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"e\":\"begin\",\"pid\":%ld,\"attempt\":%d}\n",
                static_cast<long>(::getpid()), attempt);
  append(buf);
}

void ProgressWriter::seed_started(int seed) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"e\":\"start\",\"seed\":%d}\n", seed);
  append(buf);
}

void ProgressWriter::seed_done(int seed, double wall_ms) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"e\":\"done\",\"seed\":%d,\"wall_ms\":%.3f}\n",
                seed, wall_ms);
  append(buf);
}

void ProgressWriter::start_heartbeats(int interval_ms) {
  if (interval_ms <= 0 || heartbeat_.joinable()) return;
  stop_ = false;
  heartbeat_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(cv_mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (stop_) break;
      lock.unlock();
      append("{\"e\":\"hb\"}\n");
      lock.lock();
    }
  });
}

void ProgressWriter::stop_heartbeats() {
  if (!heartbeat_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  heartbeat_.join();
}

ProgressSnapshot read_progress(const std::string& path) {
  ProgressSnapshot snap;
  std::ifstream in(path);
  if (!in) return snap;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::Json record;
    try {
      record = util::Json::parse(line);
    } catch (const std::exception&) {
      continue;  // torn final line from a crashed worker
    }
    if (!record.is_object() || !record.contains("e")) continue;
    ++snap.records;
    const std::string& event = record.at("e").as_string();
    if (event == "start" && record.contains("seed")) {
      snap.started.insert(static_cast<int>(record.at("seed").as_int()));
    } else if (event == "done" && record.contains("seed")) {
      const int seed = static_cast<int>(record.at("seed").as_int());
      snap.started.insert(seed);
      snap.done.insert(seed);
      if (record.contains("wall_ms")) {
        snap.done_wall_ms += record.at("wall_ms").as_double();
      }
    }
  }
  return snap;
}

void write_revocations(const std::string& path, const std::set<int>& seeds) {
  util::Json arr = util::Json::array();
  for (int s : seeds) arr.push_back(s);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("write_revocations: cannot write " + tmp);
    out << arr.dump() << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("write_revocations: rename to " + path +
                             " failed: " + ec.message());
  }
}

std::set<int> read_revocations(const std::string& path) {
  std::set<int> seeds;
  std::ifstream in(path);
  if (!in) return seeds;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const util::Json arr = util::Json::parse(buffer.str());
    for (const util::Json& s : arr.elements()) {
      seeds.insert(static_cast<int>(s.as_int()));
    }
  } catch (const std::exception&) {
    // An unreadable revocation file only costs duplicated work (the
    // worker computes seeds a thief also owns); arbitration dedupes.
  }
  return seeds;
}

}  // namespace lcda::dist
