#include "lcda/search/genetic_optimizer.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "lcda/util/bytes.h"

namespace lcda::search {

GeneticOptimizer::GeneticOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)), opts_(opts) {
  if (opts_.population < 2) throw std::invalid_argument("GeneticOptimizer: population");
  if (opts_.tournament < 1) throw std::invalid_argument("GeneticOptimizer: tournament");
}

const GeneticOptimizer::Scored& GeneticOptimizer::tournament_pick(
    util::Rng& rng) const {
  const Scored* best = nullptr;
  for (std::size_t i = 0; i < opts_.tournament; ++i) {
    const Scored& contender = scored_[rng.index(scored_.size())];
    if (!best || contender.fitness > best->fitness) best = &contender;
  }
  return *best;
}

Design GeneticOptimizer::propose(util::Rng& rng) {
  if (scored_.size() < opts_.population) {
    // Seeding phase: random designs until the population is full.
    const Design d = space_.sample(rng);
    pending_genes_ = space_.encode(d);
    return d;
  }
  // Breed: tournament-select parents, uniform crossover, mutate.
  std::vector<int> child = breed(rng);
  pending_genes_ = child;
  return space_.decode(child);
}

std::vector<int> GeneticOptimizer::breed(util::Rng& rng) const {
  const Scored& a = tournament_pick(rng);
  const Scored& b = tournament_pick(rng);
  std::vector<int> child = a.genes;
  if (rng.chance(opts_.crossover_rate)) {
    for (std::size_t g = 0; g < child.size(); ++g) {
      if (rng.chance(0.5)) child[g] = b.genes[g];
    }
  }
  for (std::size_t g = 0; g < child.size(); ++g) {
    if (rng.chance(opts_.mutation_rate)) {
      child[g] = static_cast<int>(rng.index(space_.cardinality(g)));
    }
  }
  return child;
}

void GeneticOptimizer::propose_batch_into(std::size_t n, util::Rng& rng,
                                          std::vector<Design>& out) {
  out.clear();
  if (n == 1) {
    out.push_back(propose(rng));
    return;
  }
  pending_genes_.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scored_.size() + out.size() < opts_.population ||
        scored_.size() < 2) {
      out.push_back(space_.sample(rng));
    } else {
      out.push_back(space_.decode(breed(rng)));
    }
  }
}

void GeneticOptimizer::feedback_batch(std::span<const Observation> batch) {
  if (batch.size() == 1) {
    feedback(batch.front());
    return;
  }
  // One generation lands at once; cull a single time afterwards so the
  // elite is chosen against the whole generation, not a rolling window.
  for (const Observation& obs : batch) add_scored(obs);
  maybe_cull();
}

void GeneticOptimizer::feedback(const Observation& obs) {
  add_scored(obs);
  maybe_cull();
}

void GeneticOptimizer::add_scored(const Observation& obs) {
  Scored s;
  if (!pending_genes_.empty() && space_.decode(pending_genes_) == obs.design) {
    s.genes = pending_genes_;
  } else {
    if (!space_.contains(obs.design)) return;
    s.genes = space_.encode(obs.design);
  }
  pending_genes_.clear();
  s.fitness = obs.reward;
  scored_.push_back(std::move(s));
}

bool GeneticOptimizer::serialize_state(std::string& out) const {
  out.clear();
  util::BinaryWriter w(out);
  w.u32(1);
  w.u64(scored_.size());
  for (const Scored& s : scored_) {
    w.ints(s.genes);
    w.f64(s.fitness);
  }
  w.ints(pending_genes_);
  return true;
}

bool GeneticOptimizer::restore_state(std::string_view blob) {
  util::BinaryReader r(blob);
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  if (!r.u32(version) || version != 1 || !r.u64(n)) return false;
  std::vector<Scored> scored;
  scored.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Scored s;
    if (!r.ints(s.genes) || !r.f64(s.fitness)) return false;
    scored.push_back(std::move(s));
  }
  std::vector<int> pending;
  if (!r.ints(pending) || !r.done()) return false;
  scored_ = std::move(scored);
  pending_genes_ = std::move(pending);
  return true;
}

void GeneticOptimizer::maybe_cull() {
  // Cull: keep the elite plus the freshest entries within 2x population.
  if (scored_.size() > opts_.population * 2) {
    std::vector<Scored> next(scored_.begin(), scored_.end());
    std::partial_sort(next.begin(),
                      next.begin() + static_cast<std::ptrdiff_t>(opts_.elite),
                      next.end(), [](const Scored& x, const Scored& y) {
                        return x.fitness > y.fitness;
                      });
    std::vector<Scored> kept(next.begin(),
                             next.begin() + static_cast<std::ptrdiff_t>(opts_.elite));
    // Freshest individuals fill the remainder.
    const std::size_t tail = opts_.population - std::min(opts_.population, opts_.elite);
    kept.insert(kept.end(), scored_.end() - static_cast<std::ptrdiff_t>(tail),
                scored_.end());
    scored_ = std::move(kept);
  }
}

}  // namespace lcda::search
