#include "lcda/search/design.h"

#include <sstream>

#include "lcda/util/rng.h"

namespace lcda::search {

std::string Design::rollout_text() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    if (i) os << ',';
    os << '[' << rollout[i].channels << ',' << rollout[i].kernel << ']';
  }
  os << ']';
  return os.str();
}

std::string Design::describe() const {
  std::ostringstream os;
  os << rollout_text() << " on " << hw.describe();
  return os.str();
}

std::uint64_t Design::hash() const {
  std::vector<int> key;
  key.reserve(rollout.size() * 2 + 6);
  for (const auto& spec : rollout) {
    key.push_back(spec.channels);
    key.push_back(spec.kernel);
  }
  key.push_back(static_cast<int>(hw.device));
  key.push_back(hw.bits_per_cell);
  key.push_back(hw.adc_bits);
  key.push_back(hw.xbar_size);
  key.push_back(hw.col_mux);
  key.push_back(hw.weight_bits);
  return util::hash_ints(key, 0xdeca1ULL);
}

}  // namespace lcda::search
