#include "lcda/search/space.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lcda::search {

namespace {

int nearest_choice(int value, const std::vector<int>& choices) {
  int best = choices.front();
  for (int c : choices) {
    if (std::abs(c - value) < std::abs(best - value)) best = c;
  }
  return best;
}

int choice_index(int value, const std::vector<int>& choices, const char* what) {
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i] == value) return static_cast<int>(i);
  }
  throw std::invalid_argument(std::string("SearchSpace::encode: ") + what +
                              " value not in space");
}

}  // namespace

SearchSpace::SearchSpace(Options opts) : opts_(std::move(opts)) {
  if (opts_.conv_layers <= 0) throw std::invalid_argument("SearchSpace: conv_layers");
  if (opts_.channel_choices.empty() || opts_.kernel_choices.empty()) {
    throw std::invalid_argument("SearchSpace: empty choice lists");
  }
  if (opts_.hw.devices.empty() || opts_.hw.bits_per_cell.empty() ||
      opts_.hw.adc_bits.empty() || opts_.hw.xbar_sizes.empty() ||
      opts_.hw.col_mux.empty()) {
    throw std::invalid_argument("SearchSpace: empty hardware choice lists");
  }
}

std::size_t SearchSpace::dimensions() const {
  return static_cast<std::size_t>(opts_.conv_layers) * 2 + 5;
}

std::size_t SearchSpace::cardinality(std::size_t dim) const {
  const auto sw_dims = static_cast<std::size_t>(opts_.conv_layers) * 2;
  if (dim < sw_dims) {
    return dim % 2 == 0 ? opts_.channel_choices.size() : opts_.kernel_choices.size();
  }
  switch (dim - sw_dims) {
    case 0: return opts_.hw.devices.size();
    case 1: return opts_.hw.bits_per_cell.size();
    case 2: return opts_.hw.adc_bits.size();
    case 3: return opts_.hw.xbar_sizes.size();
    case 4: return opts_.hw.col_mux.size();
    default: throw std::out_of_range("SearchSpace::cardinality");
  }
}

double SearchSpace::total_designs() const {
  double total = 1.0;
  for (std::size_t d = 0; d < dimensions(); ++d) {
    total *= static_cast<double>(cardinality(d));
  }
  return total;
}

std::vector<int> SearchSpace::encode(const Design& design) const {
  if (static_cast<int>(design.rollout.size()) != opts_.conv_layers) {
    throw std::invalid_argument("SearchSpace::encode: wrong rollout length");
  }
  std::vector<int> idx;
  idx.reserve(dimensions());
  for (const auto& spec : design.rollout) {
    idx.push_back(choice_index(spec.channels, opts_.channel_choices, "channel"));
    idx.push_back(choice_index(spec.kernel, opts_.kernel_choices, "kernel"));
  }
  const auto& hw = opts_.hw;
  const auto dev_it =
      std::find(hw.devices.begin(), hw.devices.end(), design.hw.device);
  if (dev_it == hw.devices.end()) {
    throw std::invalid_argument("SearchSpace::encode: device not in space");
  }
  idx.push_back(static_cast<int>(dev_it - hw.devices.begin()));
  idx.push_back(choice_index(design.hw.bits_per_cell, hw.bits_per_cell, "bits_per_cell"));
  idx.push_back(choice_index(design.hw.adc_bits, hw.adc_bits, "adc_bits"));
  idx.push_back(choice_index(design.hw.xbar_size, hw.xbar_sizes, "xbar_size"));
  idx.push_back(choice_index(design.hw.col_mux, hw.col_mux, "col_mux"));
  return idx;
}

Design SearchSpace::decode(const std::vector<int>& indices) const {
  if (indices.size() != dimensions()) {
    throw std::invalid_argument("SearchSpace::decode: wrong index count");
  }
  for (std::size_t d = 0; d < indices.size(); ++d) {
    if (indices[d] < 0 || static_cast<std::size_t>(indices[d]) >= cardinality(d)) {
      throw std::invalid_argument("SearchSpace::decode: index out of range");
    }
  }
  Design design;
  design.hw.area_budget_mm2 = opts_.area_budget_mm2;
  design.rollout.reserve(static_cast<std::size_t>(opts_.conv_layers));
  std::size_t cursor = 0;
  for (int layer = 0; layer < opts_.conv_layers; ++layer) {
    nn::ConvSpec spec;
    spec.channels = opts_.channel_choices[static_cast<std::size_t>(indices[cursor++])];
    spec.kernel = opts_.kernel_choices[static_cast<std::size_t>(indices[cursor++])];
    design.rollout.push_back(spec);
  }
  const auto& hw = opts_.hw;
  design.hw.device = hw.devices[static_cast<std::size_t>(indices[cursor++])];
  design.hw.bits_per_cell = hw.bits_per_cell[static_cast<std::size_t>(indices[cursor++])];
  design.hw.adc_bits = hw.adc_bits[static_cast<std::size_t>(indices[cursor++])];
  design.hw.xbar_size = hw.xbar_sizes[static_cast<std::size_t>(indices[cursor++])];
  design.hw.col_mux = hw.col_mux[static_cast<std::size_t>(indices[cursor++])];
  return design;
}

bool SearchSpace::decodes_to(const std::vector<int>& indices,
                             const Design& design) const {
  if (indices.size() != dimensions()) return false;
  if (design.rollout.size() != static_cast<std::size_t>(opts_.conv_layers)) {
    return false;
  }
  // Single fused pass: bounds-check each index against its dimension and
  // compare the decoded value in place (what decode() would build).
  auto pick = [](const std::vector<int>& choices, int idx, bool& ok) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= choices.size()) {
      ok = false;
      return 0;
    }
    return choices[static_cast<std::size_t>(idx)];
  };
  bool ok = true;
  std::size_t cursor = 0;
  for (const nn::ConvSpec& spec : design.rollout) {
    if (spec.channels != pick(opts_.channel_choices, indices[cursor++], ok)) {
      return false;
    }
    if (spec.kernel != pick(opts_.kernel_choices, indices[cursor++], ok)) {
      return false;
    }
    if (!ok) return false;
  }
  // Mirror decode(): the decoded design carries the space's area budget and
  // default values for the non-searched hardware fields, so those must
  // match too for decode(indices) == design to hold.
  const auto& hw = opts_.hw;
  const int dev_idx = indices[cursor++];
  if (dev_idx < 0 || static_cast<std::size_t>(dev_idx) >= hw.devices.size()) {
    return false;
  }
  cim::HardwareConfig decoded;
  decoded.area_budget_mm2 = opts_.area_budget_mm2;
  decoded.device = hw.devices[static_cast<std::size_t>(dev_idx)];
  decoded.bits_per_cell = pick(hw.bits_per_cell, indices[cursor++], ok);
  decoded.adc_bits = pick(hw.adc_bits, indices[cursor++], ok);
  decoded.xbar_size = pick(hw.xbar_sizes, indices[cursor++], ok);
  decoded.col_mux = pick(hw.col_mux, indices[cursor++], ok);
  return ok && decoded == design.hw;
}

bool SearchSpace::contains(const Design& design) const {
  try {
    (void)encode(design);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

Design SearchSpace::snap(const Design& design) const {
  Design out = design;
  out.hw.area_budget_mm2 = opts_.area_budget_mm2;
  out.rollout.resize(static_cast<std::size_t>(opts_.conv_layers));
  for (auto& spec : out.rollout) {
    if (spec.channels <= 0) spec.channels = opts_.channel_choices.front();
    if (spec.kernel <= 0) spec.kernel = opts_.kernel_choices.front();
    spec.channels = nearest_choice(spec.channels, opts_.channel_choices);
    spec.kernel = nearest_choice(spec.kernel, opts_.kernel_choices);
  }
  const auto& hw = opts_.hw;
  if (std::find(hw.devices.begin(), hw.devices.end(), out.hw.device) ==
      hw.devices.end()) {
    out.hw.device = hw.devices.front();
  }
  out.hw.bits_per_cell = nearest_choice(out.hw.bits_per_cell, hw.bits_per_cell);
  out.hw.adc_bits = nearest_choice(out.hw.adc_bits, hw.adc_bits);
  out.hw.xbar_size = nearest_choice(out.hw.xbar_size, hw.xbar_sizes);
  out.hw.col_mux = nearest_choice(out.hw.col_mux, hw.col_mux);
  return out;
}

Design SearchSpace::sample(util::Rng& rng) const {
  std::vector<int> idx(dimensions());
  for (std::size_t d = 0; d < idx.size(); ++d) {
    idx[d] = static_cast<int>(rng.index(cardinality(d)));
  }
  return decode(idx);
}

std::string SearchSpace::choices_text() const {
  std::ostringstream os;
  os << "channels per layer: {";
  for (std::size_t i = 0; i < opts_.channel_choices.size(); ++i) {
    if (i) os << ", ";
    os << opts_.channel_choices[i];
  }
  os << "}; kernel sizes: {";
  for (std::size_t i = 0; i < opts_.kernel_choices.size(); ++i) {
    if (i) os << ", ";
    os << opts_.kernel_choices[i];
  }
  os << "}; hardware: device in {";
  for (std::size_t i = 0; i < opts_.hw.devices.size(); ++i) {
    if (i) os << ", ";
    os << cim::device_name(opts_.hw.devices[i]);
  }
  os << "}, bits_per_cell in {";
  for (std::size_t i = 0; i < opts_.hw.bits_per_cell.size(); ++i) {
    if (i) os << ", ";
    os << opts_.hw.bits_per_cell[i];
  }
  os << "}, adc_bits in {";
  for (std::size_t i = 0; i < opts_.hw.adc_bits.size(); ++i) {
    if (i) os << ", ";
    os << opts_.hw.adc_bits[i];
  }
  os << "}, xbar_size in {";
  for (std::size_t i = 0; i < opts_.hw.xbar_sizes.size(); ++i) {
    if (i) os << ", ";
    os << opts_.hw.xbar_sizes[i];
  }
  os << "}, col_mux in {";
  for (std::size_t i = 0; i < opts_.hw.col_mux.size(); ++i) {
    if (i) os << ", ";
    os << opts_.hw.col_mux[i];
  }
  os << '}';
  return os.str();
}

std::string SearchSpace::model_text() const {
  std::ostringstream os;
  os << opts_.conv_layers << " convolution layers (ReLU, 2x2 max-pool after "
     << "layers 2, 4 and 6) followed by 2 fully connected layers with hidden "
     << "size " << opts_.backbone.hidden << ", input "
     << opts_.backbone.input_size << 'x' << opts_.backbone.input_size << 'x'
     << opts_.backbone.input_channels << ", " << opts_.backbone.num_classes
     << " classes";
  return os.str();
}

}  // namespace lcda::search
