#include "lcda/search/random_optimizer.h"

namespace lcda::search {

RandomOptimizer::RandomOptimizer(SearchSpace space, bool avoid_duplicates,
                                 int max_retries)
    : space_(std::move(space)),
      avoid_duplicates_(avoid_duplicates),
      max_retries_(max_retries) {}

Design RandomOptimizer::propose(util::Rng& rng) {
  Design d = space_.sample(rng);
  if (avoid_duplicates_) {
    for (int attempt = 0; attempt < max_retries_ && seen_.contains(d.hash());
         ++attempt) {
      d = space_.sample(rng);
    }
  }
  return d;
}

std::vector<Design> RandomOptimizer::propose_batch(std::size_t n,
                                                   util::Rng& rng) {
  std::vector<Design> out;
  out.reserve(n);
  std::unordered_set<std::uint64_t> batch_seen;
  for (std::size_t i = 0; i < n; ++i) {
    Design d = space_.sample(rng);
    if (avoid_duplicates_) {
      auto is_dup = [&](const Design& cand) {
        const std::uint64_t h = cand.hash();
        return seen_.contains(h) || batch_seen.contains(h);
      };
      for (int attempt = 0; attempt < max_retries_ && is_dup(d); ++attempt) {
        d = space_.sample(rng);
      }
      batch_seen.insert(d.hash());
    }
    out.push_back(std::move(d));
  }
  return out;
}

void RandomOptimizer::feedback(const Observation& obs) {
  seen_.insert(obs.design.hash());
}

}  // namespace lcda::search
