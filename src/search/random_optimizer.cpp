#include "lcda/search/random_optimizer.h"

namespace lcda::search {

RandomOptimizer::RandomOptimizer(SearchSpace space, bool avoid_duplicates,
                                 int max_retries)
    : space_(std::move(space)),
      avoid_duplicates_(avoid_duplicates),
      max_retries_(max_retries) {}

Design RandomOptimizer::propose(util::Rng& rng) {
  Design d = space_.sample(rng);
  if (avoid_duplicates_) {
    for (int attempt = 0; attempt < max_retries_ && seen_.contains(d.hash());
         ++attempt) {
      d = space_.sample(rng);
    }
  }
  return d;
}

void RandomOptimizer::feedback(const Observation& obs) {
  seen_.insert(obs.design.hash());
}

}  // namespace lcda::search
