#include "lcda/search/random_optimizer.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "lcda/util/bytes.h"

namespace lcda::search {

RandomOptimizer::RandomOptimizer(SearchSpace space, bool avoid_duplicates,
                                 int max_retries)
    : space_(std::move(space)),
      avoid_duplicates_(avoid_duplicates),
      max_retries_(max_retries) {}

Design RandomOptimizer::propose(util::Rng& rng) {
  Design d = space_.sample(rng);
  if (avoid_duplicates_) {
    for (int attempt = 0; attempt < max_retries_ && seen_.contains(d.hash());
         ++attempt) {
      d = space_.sample(rng);
    }
    // Proposals count as seen immediately (not at feedback time), so the
    // duplicate-avoidance stream is independent of when — or whether —
    // feedback arrives. That is what makes the proposal stream
    // feedback-free and the optimizer safely pipelineable, and it draws
    // the exact same designs as the historical feedback-time bookkeeping:
    // the loop always feeds back precisely what was proposed.
    seen_.insert(d.hash());
  }
  return d;
}

void RandomOptimizer::propose_batch_into(std::size_t n, util::Rng& rng,
                                         std::vector<Design>& out) {
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(propose(rng));
}

void RandomOptimizer::feedback(const Observation&) {
  // Proposals are recorded in seen_ at propose() time; nothing to learn.
}

bool RandomOptimizer::serialize_state(std::string& out) const {
  out.clear();
  util::BinaryWriter w(out);
  w.u32(1);
  std::vector<std::uint64_t> seen(seen_.begin(), seen_.end());
  std::sort(seen.begin(), seen.end());
  w.u64(seen.size());
  for (std::uint64_t h : seen) w.u64(h);
  return true;
}

bool RandomOptimizer::restore_state(std::string_view blob) {
  util::BinaryReader r(blob);
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  if (!r.u32(version) || version != 1 || !r.u64(n)) return false;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t h = 0;
    if (!r.u64(h)) return false;
    seen.insert(h);
  }
  if (!r.done()) return false;
  seen_ = std::move(seen);
  return true;
}

}  // namespace lcda::search
