#include "lcda/search/nsga2_optimizer.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "lcda/util/bytes.h"

namespace lcda::search {

bool mo_dominates(const MoPoint& a, const MoPoint& b) {
  const bool no_worse = a.accuracy >= b.accuracy && a.neg_cost >= b.neg_cost;
  const bool better = a.accuracy > b.accuracy || a.neg_cost > b.neg_cost;
  return no_worse && better;
}

std::vector<int> non_dominated_sort(const std::vector<MoPoint>& pts) {
  const std::size_t n = pts.size();
  std::vector<int> rank(n, -1);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (mo_dominates(pts[i], pts[j])) {
        dominated_by[i].push_back(j);
      } else if (mo_dominates(pts[j], pts[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) {
      rank[i] = 0;
      current.push_back(i);
    }
  }
  int level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) {
          rank[j] = level + 1;
          next.push_back(j);
        }
      }
    }
    current = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowding_distance(const std::vector<MoPoint>& pts,
                                      const std::vector<int>& ranks) {
  const std::size_t n = pts.size();
  std::vector<double> crowd(n, 0.0);
  if (n == 0) return crowd;
  const int max_rank = *std::max_element(ranks.begin(), ranks.end());
  for (int r = 0; r <= max_rank; ++r) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < n; ++i) {
      if (ranks[i] == r) front.push_back(i);
    }
    if (front.size() <= 2) {
      for (std::size_t i : front) crowd[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    // Per objective: sort the front, boundary -> inf, interior -> normalized
    // neighbour gap.
    for (int obj = 0; obj < 2; ++obj) {
      auto value = [&](std::size_t i) {
        return obj == 0 ? pts[i].accuracy : pts[i].neg_cost;
      };
      std::sort(front.begin(), front.end(),
                [&](std::size_t a, std::size_t b) { return value(a) < value(b); });
      const double span = value(front.back()) - value(front.front());
      crowd[front.front()] = std::numeric_limits<double>::infinity();
      crowd[front.back()] = std::numeric_limits<double>::infinity();
      if (span <= 0.0) continue;
      for (std::size_t k = 1; k + 1 < front.size(); ++k) {
        crowd[front[k]] += (value(front[k + 1]) - value(front[k - 1])) / span;
      }
    }
  }
  return crowd;
}

Nsga2Optimizer::Nsga2Optimizer(SearchSpace space, Options opts)
    : space_(std::move(space)), opts_(opts) {
  if (opts_.population < 4) throw std::invalid_argument("Nsga2Optimizer: population");
}

const Nsga2Optimizer::Individual& Nsga2Optimizer::tournament(
    util::Rng& rng, const std::vector<int>& ranks,
    const std::vector<double>& crowd) const {
  const std::size_t a = rng.index(archive_.size());
  const std::size_t b = rng.index(archive_.size());
  if (ranks[a] != ranks[b]) return archive_[ranks[a] < ranks[b] ? a : b];
  return archive_[crowd[a] >= crowd[b] ? a : b];
}

std::vector<int> Nsga2Optimizer::breed(util::Rng& rng,
                                       const std::vector<int>& ranks,
                                       const std::vector<double>& crowd) const {
  const Individual& a = tournament(rng, ranks, crowd);
  const Individual& b = tournament(rng, ranks, crowd);
  std::vector<int> child = a.genes;
  if (rng.chance(opts_.crossover_rate)) {
    for (std::size_t g = 0; g < child.size(); ++g) {
      if (rng.chance(0.5)) child[g] = b.genes[g];
    }
  }
  for (std::size_t g = 0; g < child.size(); ++g) {
    if (rng.chance(opts_.mutation_rate)) {
      child[g] = static_cast<int>(rng.index(space_.cardinality(g)));
    }
  }
  return child;
}

Design Nsga2Optimizer::propose(util::Rng& rng) {
  if (archive_.size() < opts_.population) {
    const Design d = space_.sample(rng);
    pending_genes_ = space_.encode(d);
    return d;
  }
  std::vector<MoPoint> pts;
  pts.reserve(archive_.size());
  for (const auto& ind : archive_) pts.push_back(ind.objectives);
  const auto ranks = non_dominated_sort(pts);
  const auto crowd = crowding_distance(pts, ranks);

  std::vector<int> child = breed(rng, ranks, crowd);
  pending_genes_ = child;
  return space_.decode(child);
}

void Nsga2Optimizer::propose_batch_into(std::size_t n, util::Rng& rng,
                                        std::vector<Design>& out) {
  out.clear();
  if (n == 1) {
    out.push_back(propose(rng));
    return;
  }
  pending_genes_.clear();
  out.reserve(n);

  // Sort the archive once for the whole generation.
  std::vector<int> ranks;
  std::vector<double> crowd;
  if (archive_.size() >= 2) {
    std::vector<MoPoint> pts;
    pts.reserve(archive_.size());
    for (const auto& ind : archive_) pts.push_back(ind.objectives);
    ranks = non_dominated_sort(pts);
    crowd = crowding_distance(pts, ranks);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (archive_.size() + out.size() < opts_.population || archive_.size() < 2) {
      out.push_back(space_.sample(rng));
    } else {
      out.push_back(space_.decode(breed(rng, ranks, crowd)));
    }
  }
}

void Nsga2Optimizer::feedback(const Observation& obs) {
  add_individual(obs);
  if (archive_.size() > 2 * opts_.population) environmental_selection();
}

void Nsga2Optimizer::feedback_batch(std::span<const Observation> batch) {
  if (batch.size() == 1) {
    feedback(batch.front());
    return;
  }
  for (const Observation& obs : batch) add_individual(obs);
  if (archive_.size() > 2 * opts_.population) environmental_selection();
}

void Nsga2Optimizer::add_individual(const Observation& obs) {
  Individual ind;
  if (!pending_genes_.empty() && space_.decode(pending_genes_) == obs.design) {
    ind.genes = pending_genes_;
  } else {
    if (!space_.contains(obs.design)) return;
    ind.genes = space_.encode(obs.design);
  }
  pending_genes_.clear();
  if (obs.valid) {
    ind.objectives.accuracy = obs.accuracy;
    ind.objectives.neg_cost = -(opts_.use_latency ? obs.latency_ns : obs.energy_pj);
  } else {
    // Invalid designs are dominated by every valid one.
    ind.objectives.accuracy = -1.0;
    ind.objectives.neg_cost = -std::numeric_limits<double>::max();
  }
  archive_.push_back(std::move(ind));
}

void Nsga2Optimizer::environmental_selection() {
  std::vector<MoPoint> pts;
  pts.reserve(archive_.size());
  for (const auto& ind : archive_) pts.push_back(ind.objectives);
  const auto ranks = non_dominated_sort(pts);
  const auto crowd = crowding_distance(pts, ranks);

  std::vector<std::size_t> order(archive_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (ranks[x] != ranks[y]) return ranks[x] < ranks[y];
    return crowd[x] > crowd[y];
  });
  std::vector<Individual> kept;
  kept.reserve(opts_.population);
  for (std::size_t k = 0; k < opts_.population && k < order.size(); ++k) {
    kept.push_back(archive_[order[k]]);
  }
  archive_ = std::move(kept);
}

bool Nsga2Optimizer::serialize_state(std::string& out) const {
  out.clear();
  util::BinaryWriter w(out);
  w.u32(1);
  w.u64(archive_.size());
  for (const Individual& ind : archive_) {
    w.ints(ind.genes);
    w.f64(ind.objectives.accuracy);
    w.f64(ind.objectives.neg_cost);
  }
  w.ints(pending_genes_);
  return true;
}

bool Nsga2Optimizer::restore_state(std::string_view blob) {
  util::BinaryReader r(blob);
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  if (!r.u32(version) || version != 1 || !r.u64(n)) return false;
  std::vector<Individual> archive;
  archive.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Individual ind;
    if (!r.ints(ind.genes) || !r.f64(ind.objectives.accuracy) ||
        !r.f64(ind.objectives.neg_cost)) {
      return false;
    }
    archive.push_back(std::move(ind));
  }
  std::vector<int> pending;
  if (!r.ints(pending) || !r.done()) return false;
  archive_ = std::move(archive);
  pending_genes_ = std::move(pending);
  return true;
}

std::vector<Design> Nsga2Optimizer::pareto_designs() const {
  std::vector<MoPoint> pts;
  pts.reserve(archive_.size());
  for (const auto& ind : archive_) pts.push_back(ind.objectives);
  const auto ranks = non_dominated_sort(pts);
  std::vector<Design> out;
  for (std::size_t i = 0; i < archive_.size(); ++i) {
    if (ranks[i] == 0 && pts[i].accuracy >= 0.0) {
      out.push_back(space_.decode(archive_[i].genes));
    }
  }
  return out;
}

}  // namespace lcda::search
