#pragma once

#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"

namespace lcda::search {

/// Simulated-annealing design optimizer — a classical single-trajectory
/// baseline between random search and the population methods: propose a
/// neighbour of the current design, accept it if better, or with the
/// Metropolis probability exp(delta / T) if worse; T cools geometrically.
class AnnealingOptimizer final : public Optimizer {
 public:
  struct Options {
    double initial_temperature = 0.25;  ///< in reward units
    double cooling_rate = 0.97;         ///< per accepted feedback
    double min_temperature = 0.005;
    /// Genes flipped per neighbour proposal.
    int mutations_per_step = 2;
  };

  explicit AnnealingOptimizer(SearchSpace space)
      : AnnealingOptimizer(std::move(space), Options{}) {}
  AnnealingOptimizer(SearchSpace space, Options opts);

  [[nodiscard]] Design propose(util::Rng& rng) override;
  void feedback(const Observation& obs) override;

  /// Speculative batch: n independent neighbours of the current state are
  /// proposed at once; feedback_batch applies one Metropolis step on the
  /// best of them and cools once, so a batch costs one "move" of the
  /// schedule while exploring n candidates. A batch of 1 is exactly one
  /// scalar step. The trajectory itself stays sequential by default (no
  /// batch preference resolves to scalar rounds); batches happen only
  /// when the caller sets an explicit batch_size.
  void propose_batch_into(std::size_t n, util::Rng& rng,
                          std::vector<Design>& out) override;
  void feedback_batch(std::span<const Observation> batch) override;
  [[nodiscard]] std::size_t preferred_batch() const override { return 0; }

  /// Trajectory (current genes + reward), temperature, pending proposal,
  /// and the accept-RNG cursor.
  bool serialize_state(std::string& out) const override;
  bool restore_state(std::string_view blob) override;

  [[nodiscard]] std::string name() const override { return "Annealing"; }

  [[nodiscard]] double temperature() const { return temperature_; }
  [[nodiscard]] bool has_state() const { return !current_genes_.empty(); }

 private:
  SearchSpace space_;
  Options opts_;
  std::vector<int> current_genes_;
  double current_reward_ = 0.0;
  std::vector<int> pending_genes_;
  double temperature_;
  /// Drives accept/reject draws; seeded on first propose() so the whole
  /// trajectory is reproducible from the caller's RNG.
  util::Rng accept_rng_{0};
  bool accept_rng_seeded_ = false;
};

}  // namespace lcda::search
