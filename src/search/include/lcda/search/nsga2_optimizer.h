#pragma once

#include <vector>

#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"

namespace lcda::search {

/// A point in multi-objective space; both coordinates are maximized
/// (hardware cost is stored negated).
struct MoPoint {
  double accuracy = 0.0;
  double neg_cost = 0.0;
};

/// True when `a` Pareto-dominates `b` (both maximized).
[[nodiscard]] bool mo_dominates(const MoPoint& a, const MoPoint& b);

/// Fast non-dominated sort (Deb et al. 2002): returns the front rank of
/// each point (0 = non-dominated).
[[nodiscard]] std::vector<int> non_dominated_sort(const std::vector<MoPoint>& pts);

/// Crowding distance of each point *within its own front*; boundary points
/// get +infinity.
[[nodiscard]] std::vector<double> crowding_distance(const std::vector<MoPoint>& pts,
                                                    const std::vector<int>& ranks);

/// NSGA-II-style multi-objective design optimizer (the strategy family of
/// NSGA-Net, paper ref [14]). Unlike the scalarized RL/GA baselines it
/// optimizes (accuracy, hardware-cost) as a true bi-objective problem:
/// parents are chosen by (front rank, crowding distance) tournaments, so
/// the population spreads along the whole Pareto front rather than
/// collapsing onto the reward function's preferred corner.
class Nsga2Optimizer final : public Optimizer {
 public:
  struct Options {
    std::size_t population = 24;
    double crossover_rate = 0.9;
    double mutation_rate = 0.08;
    /// Which Observation field is the cost objective.
    bool use_latency = false;
  };

  explicit Nsga2Optimizer(SearchSpace space)
      : Nsga2Optimizer(std::move(space), Options{}) {}
  Nsga2Optimizer(SearchSpace space, Options opts);

  [[nodiscard]] Design propose(util::Rng& rng) override;
  void feedback(const Observation& obs) override;

  /// Generational batch: the non-dominated sort and crowding distances are
  /// computed once per batch instead of once per proposal, and the
  /// environmental selection runs once after the whole generation lands.
  void propose_batch_into(std::size_t n, util::Rng& rng,
                          std::vector<Design>& out) override;
  void feedback_batch(std::span<const Observation> batch) override;
  [[nodiscard]] std::size_t preferred_batch() const override {
    return opts_.population;
  }

  /// Archive (genes + objectives, in insertion order — the environmental
  /// selection's sort is stable in rank/crowding but ties resolve by
  /// index) and the pending-proposal genes.
  bool serialize_state(std::string& out) const override;
  bool restore_state(std::string_view blob) override;

  [[nodiscard]] std::string name() const override { return "NSGA-II"; }

  /// The current non-dominated set of evaluated designs.
  [[nodiscard]] std::vector<Design> pareto_designs() const;

  [[nodiscard]] std::size_t archive_size() const { return archive_.size(); }

 private:
  struct Individual {
    std::vector<int> genes;
    MoPoint objectives;
  };

  void environmental_selection();
  void add_individual(const Observation& obs);
  [[nodiscard]] const Individual& tournament(util::Rng& rng,
                                             const std::vector<int>& ranks,
                                             const std::vector<double>& crowd) const;
  [[nodiscard]] std::vector<int> breed(util::Rng& rng,
                                       const std::vector<int>& ranks,
                                       const std::vector<double>& crowd) const;

  SearchSpace space_;
  Options opts_;
  std::vector<Individual> archive_;
  std::vector<int> pending_genes_;
};

}  // namespace lcda::search
