#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lcda/cim/config.h"
#include "lcda/nn/model_builder.h"

namespace lcda::search {

/// One co-design candidate: the DNN rollout (six [channels, kernel] pairs in
/// the paper's space) plus the CiM hardware instance.
struct Design {
  std::vector<nn::ConvSpec> rollout;
  cim::HardwareConfig hw;

  /// Rollout as the paper's text form: "[[32,3],[32,3],...]".
  [[nodiscard]] std::string rollout_text() const;

  /// Full human-readable description (rollout + hardware).
  [[nodiscard]] std::string describe() const;

  /// Stable content hash (used for dedup and deterministic per-design
  /// jitter). Covers rollout and every searched hardware knob.
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] bool operator==(const Design&) const = default;
};

}  // namespace lcda::search
