#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lcda/search/design.h"
#include "lcda/util/rng.h"

namespace lcda::search {

/// The NACIM co-design space (paper Sec. IV): per-layer channel and kernel
/// choices for six conv layers, plus the hardware knobs.
class SearchSpace {
 public:
  struct Options {
    int conv_layers = 6;
    std::vector<int> channel_choices = {16, 24, 32, 48, 64, 96, 128};
    std::vector<int> kernel_choices = {1, 3, 5, 7};
    cim::HardwareChoices hw;
    nn::BackboneOptions backbone;

    /// Area budget stamped onto every design this space produces (decode,
    /// sample, snap). Designs whose chip exceeds it are invalid and earn
    /// the framework's -1 reward; scenarios tighten it to stress the
    /// optimizers' validity handling.
    double area_budget_mm2 = 75.0;
  };

  SearchSpace() : SearchSpace(Options{}) {}
  explicit SearchSpace(Options opts);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] int conv_layers() const { return opts_.conv_layers; }

  /// Number of categorical decision dimensions:
  /// 2 per conv layer + 5 hardware knobs.
  [[nodiscard]] std::size_t dimensions() const;

  /// Choice count of dimension d.
  [[nodiscard]] std::size_t cardinality(std::size_t dim) const;

  /// Total design count (product of cardinalities).
  [[nodiscard]] double total_designs() const;

  /// Encode/decode between a Design and a per-dimension choice-index vector.
  /// encode() throws if a design uses values outside the space.
  [[nodiscard]] std::vector<int> encode(const Design& design) const;
  [[nodiscard]] Design decode(const std::vector<int>& indices) const;

  /// Equivalent to decode(indices) == design (false instead of throwing on
  /// malformed indices), without materializing the decoded Design — the
  /// allocation-free check the RL controller runs on every feedback.
  [[nodiscard]] bool decodes_to(const std::vector<int>& indices,
                                const Design& design) const;

  /// True when every rollout entry and hardware knob is a legal choice.
  [[nodiscard]] bool contains(const Design& design) const;

  /// Clamps a design onto the space: every value is snapped to the nearest
  /// legal choice (used to repair slightly-off LLM proposals).
  [[nodiscard]] Design snap(const Design& design) const;

  /// Uniformly random design.
  [[nodiscard]] Design sample(util::Rng& rng) const;

  /// Human-readable description of the choices (used in LLM prompts):
  /// channels, kernels and hardware knob option lists.
  [[nodiscard]] std::string choices_text() const;

  /// Description of the backbone (used in LLM prompts).
  [[nodiscard]] std::string model_text() const;

 private:
  Options opts_;
};

}  // namespace lcda::search
