#pragma once

#include <unordered_set>

#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"

namespace lcda::search {

/// Uniform random search with optional duplicate avoidance — the weakest
/// sensible baseline and a useful control in the benchmarks.
class RandomOptimizer final : public Optimizer {
 public:
  explicit RandomOptimizer(SearchSpace space, bool avoid_duplicates = true,
                           int max_retries = 32);

  [[nodiscard]] Design propose(util::Rng& rng) override;
  void feedback(const Observation& obs) override;

  /// Samples are independent, so a batch of n draws the exact same designs
  /// as n scalar propose/feedback round trips: duplicate avoidance counts
  /// every proposal as seen the moment it is drawn.
  void propose_batch_into(std::size_t n, util::Rng& rng,
                          std::vector<Design>& out) override;
  [[nodiscard]] std::size_t preferred_batch() const override { return 0; }

  /// The proposal stream never reads feedback, so the engine may propose
  /// arbitrarily far ahead of in-flight evaluations without changing it.
  [[nodiscard]] std::size_t pipeline_lookahead() const override {
    return static_cast<std::size_t>(-1);
  }

  /// The duplicate filter is the whole learned state; hashes are written
  /// sorted so the blob is deterministic regardless of set iteration order.
  bool serialize_state(std::string& out) const override;
  bool restore_state(std::string_view blob) override;

  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  SearchSpace space_;
  bool avoid_duplicates_;
  int max_retries_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace lcda::search
