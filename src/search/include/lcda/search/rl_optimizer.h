#pragma once

#include <vector>

#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"
#include "lcda/util/stats.h"

namespace lcda::search {

/// REINFORCE policy-gradient controller — the optimization strategy of the
/// NACIM baseline (paper Sec. IV: "NACIM, which employs reinforcement
/// learning as its optimization strategy").
///
/// The policy is a product of independent categorical distributions, one
/// per decision dimension (12 software + 5 hardware). Logits start at zero,
/// i.e. uniform — the "cold start" the paper criticizes: early proposals
/// are random and the controller must learn every heuristic from rewards.
class RlOptimizer final : public Optimizer {
 public:
  struct Options {
    double learning_rate = 0.12;
    double baseline_decay = 0.85;
    /// Temperature anneal: logits are divided by a temperature that decays
    /// from `initial_temperature` toward 1.0 with rate `temperature_decay`
    /// per feedback, sharpening the policy over time.
    double initial_temperature = 2.0;
    double temperature_decay = 0.995;
  };

  explicit RlOptimizer(SearchSpace space) : RlOptimizer(std::move(space), Options{}) {}
  RlOptimizer(SearchSpace space, Options opts);

  [[nodiscard]] Design propose(util::Rng& rng) override;
  void feedback(const Observation& obs) override;

  /// Policy logits, softmax temperature, REINFORCE baseline, episode
  /// count, and the last proposal's choices. The softmax caches are
  /// derived state: restore just marks them stale and the next propose
  /// recomputes them bit-identically.
  bool serialize_state(std::string& out) const override;
  bool restore_state(std::string_view blob) override;

  [[nodiscard]] std::string name() const override { return "NACIM-RL"; }

  /// Current probability vector of a dimension (exposed for tests).
  [[nodiscard]] std::vector<double> policy(std::size_t dim) const;

  [[nodiscard]] std::size_t episodes() const { return episodes_; }

 private:
  void fill_probabilities(std::size_t dim, std::vector<double>& out) const;
  void refresh_probabilities();

  SearchSpace space_;
  Options opts_;
  std::vector<std::vector<double>> logits_;  // [dim][choice]
  std::vector<int> last_choice_;             // indices of the last proposal
  util::Ema baseline_;
  double temperature_;
  std::size_t episodes_ = 0;

  /// Softmax of the current policy, one vector per dimension, recomputed
  /// in place only when logits or temperature changed. A propose →
  /// feedback episode therefore folds the softmax once instead of twice
  /// (and allocates nothing): the REINFORCE update needs the exact
  /// probabilities the proposal was drawn from, which are still cached.
  /// totals_ caches each dimension's left-to-right probability sum for
  /// Rng::weighted_index's precomputed-total overload (bit-identical
  /// draws, one fewer pass per dimension per proposal).
  std::vector<std::vector<double>> probs_;
  std::vector<double> totals_;
  bool probs_fresh_ = false;
};

}  // namespace lcda::search
