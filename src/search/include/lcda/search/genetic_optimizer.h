#pragma once

#include <deque>
#include <vector>

#include "lcda/search/optimizer.h"
#include "lcda/search/space.h"

namespace lcda::search {

/// Genetic-algorithm design optimizer (the paper cites NSGA-Net [14] as the
/// other classical co-design strategy; this is a single-objective GA over
/// the encoded design vector with tournament selection, uniform crossover
/// and per-gene mutation).
class GeneticOptimizer final : public Optimizer {
 public:
  struct Options {
    std::size_t population = 24;
    std::size_t tournament = 3;
    double crossover_rate = 0.9;
    double mutation_rate = 0.08;  ///< per gene
    std::size_t elite = 4;        ///< survivors kept when the pool is culled
  };

  explicit GeneticOptimizer(SearchSpace space)
      : GeneticOptimizer(std::move(space), Options{}) {}
  GeneticOptimizer(SearchSpace space, Options opts);

  [[nodiscard]] Design propose(util::Rng& rng) override;
  void feedback(const Observation& obs) override;

  /// Generational batch: n children bred from a snapshot of the current
  /// pool (the seeding phase fills with random designs first). The natural
  /// batch is one population.
  void propose_batch_into(std::size_t n, util::Rng& rng,
                          std::vector<Design>& out) override;
  void feedback_batch(std::span<const Observation> batch) override;
  [[nodiscard]] std::size_t preferred_batch() const override {
    return opts_.population;
  }

  /// Population (genes + fitness, in insertion order — the cull is
  /// order-sensitive) and the pending-proposal genes.
  bool serialize_state(std::string& out) const override;
  bool restore_state(std::string_view blob) override;

  [[nodiscard]] std::string name() const override { return "Genetic"; }

  [[nodiscard]] std::size_t population_size() const { return scored_.size(); }

 private:
  struct Scored {
    std::vector<int> genes;
    double fitness = 0.0;
  };

  [[nodiscard]] const Scored& tournament_pick(util::Rng& rng) const;
  [[nodiscard]] std::vector<int> breed(util::Rng& rng) const;
  void add_scored(const Observation& obs);
  void maybe_cull();

  SearchSpace space_;
  Options opts_;
  std::vector<Scored> scored_;
  std::vector<int> pending_genes_;
};

}  // namespace lcda::search
