#pragma once

#include <string>

#include "lcda/search/design.h"
#include "lcda/util/rng.h"

namespace lcda::search {

/// What the framework reports back to an optimizer after evaluating one
/// design candidate (one "episode" in the paper's terminology).
struct Observation {
  Design design;
  /// Scalar reward from the reward function; -1 for invalid hardware.
  double reward = 0.0;
  /// Components, for optimizers/logs that want them.
  double accuracy = 0.0;
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  bool valid = false;
};

/// Design optimizer interface (paper Sec. III-A): proposes the next design
/// candidate given everything observed so far.
///
/// Implementations: llm::LlmOptimizer (LCDA), RlOptimizer (NACIM's RL
/// strategy), GeneticOptimizer, RandomOptimizer.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Next candidate to evaluate.
  [[nodiscard]] virtual Design propose(util::Rng& rng) = 0;

  /// Result of evaluating the most recent (or any past) proposal.
  virtual void feedback(const Observation& obs) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lcda::search
