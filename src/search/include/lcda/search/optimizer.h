#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lcda/search/design.h"
#include "lcda/util/rng.h"

namespace lcda::search {

/// What the framework reports back to an optimizer after evaluating one
/// design candidate (one "episode" in the paper's terminology).
struct Observation {
  Design design;
  /// Scalar reward from the reward function; -1 for invalid hardware.
  double reward = 0.0;
  /// Components, for optimizers/logs that want them.
  double accuracy = 0.0;
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  bool valid = false;
};

/// Design optimizer interface (paper Sec. III-A): proposes the next design
/// candidate given everything observed so far.
///
/// Implementations: llm::LlmOptimizer (LCDA), RlOptimizer (NACIM's RL
/// strategy), GeneticOptimizer, RandomOptimizer.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Next candidate to evaluate.
  [[nodiscard]] virtual Design propose(util::Rng& rng) = 0;

  /// Result of evaluating the most recent (or any past) proposal.
  virtual void feedback(const Observation& obs) = 0;

  /// --- Batch contract (the parallel engine's entry points) -------------
  ///
  /// propose_batch_into(n, rng, out) fills `out` with exactly n candidates
  /// produced without any feedback in between; feedback_batch delivers
  /// their observations in proposal order. The defaults delegate to the
  /// scalar methods, so a strictly sequential optimizer (e.g.
  /// llm::LlmOptimizer, whose every prompt embeds the full history) keeps
  /// its semantics unchanged. Overrides may implement genuinely
  /// generational behaviour, but a batch of size 1 must always be
  /// equivalent to one scalar round trip.
  ///
  /// The engine calls propose_batch_into with a reused buffer every round
  /// (the out-parameter is what keeps the steady-state proposal plumbing
  /// allocation-free); propose_batch is the convenience wrapper.

  virtual void propose_batch_into(std::size_t n, util::Rng& rng,
                                  std::vector<Design>& out) {
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(propose(rng));
  }

  [[nodiscard]] std::vector<Design> propose_batch(std::size_t n,
                                                  util::Rng& rng) {
    std::vector<Design> out;
    propose_batch_into(n, rng, out);
    return out;
  }

  virtual void feedback_batch(std::span<const Observation> batch) {
    for (const Observation& obs : batch) feedback(obs);
  }

  /// Largest batch this optimizer naturally digests per round: 1 for
  /// strictly sequential strategies, the population size for generational
  /// ones, 0 for "no preference" (any batch size is as good as any other).
  [[nodiscard]] virtual std::size_t preferred_batch() const { return 1; }

  /// --- Checkpoint contract ---------------------------------------------
  ///
  /// serialize_state appends a self-contained binary blob of the
  /// optimizer's LEARNED state (populations, trajectories, policy weights,
  /// duplicate filters — everything that evolves with feedback) to `out`;
  /// configuration (options, the search space) is not serialized, because
  /// a restored optimizer is always constructed from the same experiment
  /// config first. Returns false when the strategy does not support
  /// checkpointing (the default — e.g. the LLM strategies, whose state
  /// lives in conversation history); a false return leaves `out` empty
  /// and the caller must skip checkpointing rather than write a hole.
  ///
  /// restore_state inverts serialize_state on a same-config optimizer:
  /// after it returns true, the proposal stream continues bit-for-bit
  /// where the serialized instance left off. Returns false on a
  /// malformed, truncated, or version-incompatible blob, in which case
  /// the optimizer must be treated as unusable for resume (cold-start a
  /// fresh one instead).

  virtual bool serialize_state(std::string& out) const {
    out.clear();
    return false;
  }

  virtual bool restore_state(std::string_view blob) {
    (void)blob;
    return false;
  }

  /// How many batches beyond the last fed-back one this optimizer may be
  /// asked to propose WITHOUT changing its proposal stream — the engine's
  /// licence to overlap propose_batch(k+1) with batch k still evaluating
  /// (CodesignLoop pipelined mode). 0 (the default) means "my proposals
  /// depend on the latest feedback; never propose ahead", which keeps
  /// learning optimizers (RL, GA, annealing, LLM history prompts) on the
  /// strict propose -> evaluate -> feedback cadence. Optimizers whose
  /// proposals are feedback-independent (e.g. random search) return a
  /// large value; the loop clamps it to its pipeline depth.
  [[nodiscard]] virtual std::size_t pipeline_lookahead() const { return 0; }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lcda::search
