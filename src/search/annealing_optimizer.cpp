#include "lcda/search/annealing_optimizer.h"

#include <cmath>
#include <stdexcept>

namespace lcda::search {

AnnealingOptimizer::AnnealingOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)),
      opts_(opts),
      temperature_(opts.initial_temperature) {
  if (opts.initial_temperature <= 0.0 || opts.cooling_rate <= 0.0 ||
      opts.cooling_rate >= 1.0 || opts.mutations_per_step < 1) {
    throw std::invalid_argument("AnnealingOptimizer: bad options");
  }
}

Design AnnealingOptimizer::propose(util::Rng& rng) {
  if (!accept_rng_seeded_) {
    accept_rng_ = rng.fork();
    accept_rng_seeded_ = true;
  }
  if (current_genes_.empty()) {
    const Design d = space_.sample(rng);
    pending_genes_ = space_.encode(d);
    return d;
  }
  std::vector<int> neighbour = current_genes_;
  for (int m = 0; m < opts_.mutations_per_step; ++m) {
    const std::size_t g = rng.index(neighbour.size());
    neighbour[g] = static_cast<int>(rng.index(space_.cardinality(g)));
  }
  pending_genes_ = neighbour;
  return space_.decode(neighbour);
}

void AnnealingOptimizer::propose_batch_into(std::size_t n, util::Rng& rng,
                                            std::vector<Design>& out) {
  out.clear();
  if (n == 1) {
    out.push_back(propose(rng));
    return;
  }
  if (!accept_rng_seeded_) {
    accept_rng_ = rng.fork();
    accept_rng_seeded_ = true;
  }
  pending_genes_.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (current_genes_.empty()) {
      out.push_back(space_.sample(rng));
      continue;
    }
    std::vector<int> neighbour = current_genes_;
    for (int m = 0; m < opts_.mutations_per_step; ++m) {
      const std::size_t g = rng.index(neighbour.size());
      neighbour[g] = static_cast<int>(rng.index(space_.cardinality(g)));
    }
    out.push_back(space_.decode(neighbour));
  }
}

void AnnealingOptimizer::feedback_batch(std::span<const Observation> batch) {
  if (batch.size() == 1) {
    feedback(batch.front());
    return;
  }
  // One Metropolis step on the batch's best candidate, one cooling step.
  const Observation* best = nullptr;
  for (const Observation& obs : batch) {
    if (!space_.contains(obs.design)) continue;
    if (!best || obs.reward > best->reward) best = &obs;
  }
  if (best) feedback(*best);
}

void AnnealingOptimizer::feedback(const Observation& obs) {
  std::vector<int> genes;
  if (!pending_genes_.empty() && space_.decode(pending_genes_) == obs.design) {
    genes = pending_genes_;
  } else {
    if (!space_.contains(obs.design)) return;
    genes = space_.encode(obs.design);
  }
  pending_genes_.clear();

  if (current_genes_.empty()) {
    current_genes_ = std::move(genes);
    current_reward_ = obs.reward;
    return;
  }
  const double delta = obs.reward - current_reward_;
  const bool accept =
      delta >= 0.0 || accept_rng_.chance(std::exp(delta / temperature_));
  if (accept) {
    current_genes_ = std::move(genes);
    current_reward_ = obs.reward;
  }
  temperature_ = std::max(opts_.min_temperature,
                          temperature_ * opts_.cooling_rate);
}

}  // namespace lcda::search
