#include "lcda/search/annealing_optimizer.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "lcda/util/bytes.h"

namespace lcda::search {

AnnealingOptimizer::AnnealingOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)),
      opts_(opts),
      temperature_(opts.initial_temperature) {
  if (opts.initial_temperature <= 0.0 || opts.cooling_rate <= 0.0 ||
      opts.cooling_rate >= 1.0 || opts.mutations_per_step < 1) {
    throw std::invalid_argument("AnnealingOptimizer: bad options");
  }
}

Design AnnealingOptimizer::propose(util::Rng& rng) {
  if (!accept_rng_seeded_) {
    accept_rng_ = rng.fork();
    accept_rng_seeded_ = true;
  }
  if (current_genes_.empty()) {
    const Design d = space_.sample(rng);
    pending_genes_ = space_.encode(d);
    return d;
  }
  std::vector<int> neighbour = current_genes_;
  for (int m = 0; m < opts_.mutations_per_step; ++m) {
    const std::size_t g = rng.index(neighbour.size());
    neighbour[g] = static_cast<int>(rng.index(space_.cardinality(g)));
  }
  pending_genes_ = neighbour;
  return space_.decode(neighbour);
}

void AnnealingOptimizer::propose_batch_into(std::size_t n, util::Rng& rng,
                                            std::vector<Design>& out) {
  out.clear();
  if (n == 1) {
    out.push_back(propose(rng));
    return;
  }
  if (!accept_rng_seeded_) {
    accept_rng_ = rng.fork();
    accept_rng_seeded_ = true;
  }
  pending_genes_.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (current_genes_.empty()) {
      out.push_back(space_.sample(rng));
      continue;
    }
    std::vector<int> neighbour = current_genes_;
    for (int m = 0; m < opts_.mutations_per_step; ++m) {
      const std::size_t g = rng.index(neighbour.size());
      neighbour[g] = static_cast<int>(rng.index(space_.cardinality(g)));
    }
    out.push_back(space_.decode(neighbour));
  }
}

void AnnealingOptimizer::feedback_batch(std::span<const Observation> batch) {
  if (batch.size() == 1) {
    feedback(batch.front());
    return;
  }
  // One Metropolis step on the batch's best candidate, one cooling step.
  const Observation* best = nullptr;
  for (const Observation& obs : batch) {
    if (!space_.contains(obs.design)) continue;
    if (!best || obs.reward > best->reward) best = &obs;
  }
  if (best) feedback(*best);
}

void AnnealingOptimizer::feedback(const Observation& obs) {
  std::vector<int> genes;
  if (!pending_genes_.empty() && space_.decode(pending_genes_) == obs.design) {
    genes = pending_genes_;
  } else {
    if (!space_.contains(obs.design)) return;
    genes = space_.encode(obs.design);
  }
  pending_genes_.clear();

  if (current_genes_.empty()) {
    current_genes_ = std::move(genes);
    current_reward_ = obs.reward;
    return;
  }
  const double delta = obs.reward - current_reward_;
  const bool accept =
      delta >= 0.0 || accept_rng_.chance(std::exp(delta / temperature_));
  if (accept) {
    current_genes_ = std::move(genes);
    current_reward_ = obs.reward;
  }
  temperature_ = std::max(opts_.min_temperature,
                          temperature_ * opts_.cooling_rate);
}

bool AnnealingOptimizer::serialize_state(std::string& out) const {
  out.clear();
  util::BinaryWriter w(out);
  w.u32(1);
  w.ints(current_genes_);
  w.f64(current_reward_);
  w.ints(pending_genes_);
  w.f64(temperature_);
  w.u8(accept_rng_seeded_ ? 1 : 0);
  const util::Rng::State rng = accept_rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.f64(rng.spare_normal);
  w.u8(rng.has_spare ? 1 : 0);
  return true;
}

bool AnnealingOptimizer::restore_state(std::string_view blob) {
  util::BinaryReader r(blob);
  std::uint32_t version = 0;
  if (!r.u32(version) || version != 1) return false;
  std::vector<int> current;
  std::vector<int> pending;
  double reward = 0.0;
  double temperature = 0.0;
  std::uint8_t seeded = 0;
  util::Rng::State rng;
  std::uint8_t has_spare = 0;
  if (!r.ints(current) || !r.f64(reward) || !r.ints(pending) ||
      !r.f64(temperature) || !r.u8(seeded)) {
    return false;
  }
  for (std::uint64_t& word : rng.s) {
    if (!r.u64(word)) return false;
  }
  if (!r.f64(rng.spare_normal) || !r.u8(has_spare) || !r.done()) return false;
  rng.has_spare = has_spare != 0;
  current_genes_ = std::move(current);
  current_reward_ = reward;
  pending_genes_ = std::move(pending);
  temperature_ = temperature;
  accept_rng_seeded_ = seeded != 0;
  accept_rng_.set_state(rng);
  return true;
}

}  // namespace lcda::search
