#include "lcda/search/rl_optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "lcda/util/bytes.h"

namespace lcda::search {

RlOptimizer::RlOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)),
      opts_(opts),
      baseline_(opts.baseline_decay),
      temperature_(opts.initial_temperature) {
  logits_.resize(space_.dimensions());
  probs_.resize(space_.dimensions());
  totals_.assign(space_.dimensions(), 0.0);
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    logits_[d].assign(space_.cardinality(d), 0.0);
    probs_[d].assign(space_.cardinality(d), 0.0);
  }
}

void RlOptimizer::fill_probabilities(std::size_t dim,
                                     std::vector<double>& out) const {
  const auto& logit = logits_[dim];
  out.resize(logit.size());
  const double t = std::max(1.0, temperature_);
  double mx = logit[0];
  for (double l : logit) mx = std::max(mx, l);
  double sum = 0.0;
  for (std::size_t i = 0; i < logit.size(); ++i) {
    out[i] = std::exp((logit[i] - mx) / t);
    sum += out[i];
  }
  for (double& x : out) x /= sum;
}

void RlOptimizer::refresh_probabilities() {
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    fill_probabilities(d, probs_[d]);
    // Left-to-right, exactly as weighted_index's self-summing overload
    // would — the cached total must reproduce its bits.
    double total = 0.0;
    for (double p : probs_[d]) total += p;
    totals_[d] = total;
  }
  probs_fresh_ = true;
}

std::vector<double> RlOptimizer::policy(std::size_t dim) const {
  if (dim >= logits_.size()) throw std::out_of_range("RlOptimizer::policy");
  std::vector<double> p;
  fill_probabilities(dim, p);
  return p;
}

Design RlOptimizer::propose(util::Rng& rng) {
  if (!probs_fresh_) refresh_probabilities();
  last_choice_.clear();
  last_choice_.reserve(space_.dimensions());
  for (std::size_t d = 0; d < space_.dimensions(); ++d) {
    last_choice_.push_back(
        static_cast<int>(rng.weighted_index(probs_[d], totals_[d])));
  }
  return space_.decode(last_choice_);
}

void RlOptimizer::feedback(const Observation& obs) {
  // REINFORCE on the episode that produced `obs`. If feedback arrives for a
  // design other than the last proposal (e.g. replayed history), re-encode.
  const std::vector<int>* choice = &last_choice_;
  std::vector<int> encoded;
  if (last_choice_.empty() || !space_.decodes_to(last_choice_, obs.design)) {
    if (!space_.contains(obs.design)) return;  // outside our space: ignore
    encoded = space_.encode(obs.design);
    choice = &encoded;
  }

  const double baseline =
      baseline_.initialized() ? baseline_.value() : obs.reward;
  const double advantage = obs.reward - baseline;
  baseline_.update(obs.reward);

  // The gradient needs the probabilities the policy holds *before* this
  // update — exactly what the cache still contains after the propose that
  // produced `obs` (logits and temperature are untouched in between).
  if (!probs_fresh_) refresh_probabilities();
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    const auto& p = probs_[d];
    const auto chosen = static_cast<std::size_t>((*choice)[d]);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = (i == chosen ? 1.0 - p[i] : -p[i]);
      logits_[d][i] += opts_.learning_rate * advantage * grad;
    }
  }
  temperature_ = 1.0 + (temperature_ - 1.0) * opts_.temperature_decay;
  probs_fresh_ = false;
  ++episodes_;
  last_choice_.clear();
}

bool RlOptimizer::serialize_state(std::string& out) const {
  out.clear();
  util::BinaryWriter w(out);
  w.u32(1);
  w.u64(logits_.size());
  for (const std::vector<double>& logit : logits_) {
    w.u64(logit.size());
    for (double l : logit) w.f64(l);
  }
  w.ints(last_choice_);
  w.u8(baseline_.initialized() ? 1 : 0);
  w.f64(baseline_.value());
  w.f64(temperature_);
  w.u64(episodes_);
  return true;
}

bool RlOptimizer::restore_state(std::string_view blob) {
  util::BinaryReader r(blob);
  std::uint32_t version = 0;
  std::uint64_t dims = 0;
  if (!r.u32(version) || version != 1 || !r.u64(dims)) return false;
  // The policy shape is configuration (it comes from the search space);
  // a blob with a different shape belongs to a different study.
  if (dims != logits_.size()) return false;
  std::vector<std::vector<double>> logits(dims);
  for (std::uint64_t d = 0; d < dims; ++d) {
    std::uint64_t choices = 0;
    if (!r.u64(choices) || choices != logits_[d].size()) return false;
    logits[d].resize(choices);
    for (double& l : logits[d]) {
      if (!r.f64(l)) return false;
    }
  }
  std::vector<int> last_choice;
  std::uint8_t baseline_init = 0;
  double baseline_value = 0.0;
  double temperature = 0.0;
  std::uint64_t episodes = 0;
  if (!r.ints(last_choice) || !r.u8(baseline_init) || !r.f64(baseline_value) ||
      !r.f64(temperature) || !r.u64(episodes) || !r.done()) {
    return false;
  }
  logits_ = std::move(logits);
  last_choice_ = std::move(last_choice);
  baseline_.restore(baseline_value, baseline_init != 0);
  temperature_ = temperature;
  episodes_ = episodes;
  probs_fresh_ = false;
  return true;
}

}  // namespace lcda::search
