#include "lcda/search/rl_optimizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcda::search {

RlOptimizer::RlOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)),
      opts_(opts),
      baseline_(opts.baseline_decay),
      temperature_(opts.initial_temperature) {
  logits_.resize(space_.dimensions());
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    logits_[d].assign(space_.cardinality(d), 0.0);
  }
}

std::vector<double> RlOptimizer::probabilities(std::size_t dim) const {
  const auto& logit = logits_[dim];
  std::vector<double> p(logit.size());
  const double t = std::max(1.0, temperature_);
  double mx = logit[0];
  for (double l : logit) mx = std::max(mx, l);
  double sum = 0.0;
  for (std::size_t i = 0; i < logit.size(); ++i) {
    p[i] = std::exp((logit[i] - mx) / t);
    sum += p[i];
  }
  for (double& x : p) x /= sum;
  return p;
}

std::vector<double> RlOptimizer::policy(std::size_t dim) const {
  if (dim >= logits_.size()) throw std::out_of_range("RlOptimizer::policy");
  return probabilities(dim);
}

Design RlOptimizer::propose(util::Rng& rng) {
  last_choice_.clear();
  last_choice_.reserve(space_.dimensions());
  for (std::size_t d = 0; d < space_.dimensions(); ++d) {
    const auto p = probabilities(d);
    last_choice_.push_back(static_cast<int>(rng.weighted_index(p)));
  }
  return space_.decode(last_choice_);
}

void RlOptimizer::feedback(const Observation& obs) {
  // REINFORCE on the episode that produced `obs`. If feedback arrives for a
  // design other than the last proposal (e.g. replayed history), re-encode.
  std::vector<int> choice = last_choice_;
  if (choice.empty() || space_.decode(choice) != obs.design) {
    if (!space_.contains(obs.design)) return;  // outside our space: ignore
    choice = space_.encode(obs.design);
  }

  const double baseline =
      baseline_.initialized() ? baseline_.value() : obs.reward;
  const double advantage = obs.reward - baseline;
  baseline_.update(obs.reward);

  for (std::size_t d = 0; d < logits_.size(); ++d) {
    const auto p = probabilities(d);
    const auto chosen = static_cast<std::size_t>(choice[d]);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = (i == chosen ? 1.0 - p[i] : -p[i]);
      logits_[d][i] += opts_.learning_rate * advantage * grad;
    }
  }
  temperature_ = 1.0 + (temperature_ - 1.0) * opts_.temperature_decay;
  ++episodes_;
  last_choice_.clear();
}

}  // namespace lcda::search
