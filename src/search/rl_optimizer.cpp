#include "lcda/search/rl_optimizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcda::search {

RlOptimizer::RlOptimizer(SearchSpace space, Options opts)
    : space_(std::move(space)),
      opts_(opts),
      baseline_(opts.baseline_decay),
      temperature_(opts.initial_temperature) {
  logits_.resize(space_.dimensions());
  probs_.resize(space_.dimensions());
  totals_.assign(space_.dimensions(), 0.0);
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    logits_[d].assign(space_.cardinality(d), 0.0);
    probs_[d].assign(space_.cardinality(d), 0.0);
  }
}

void RlOptimizer::fill_probabilities(std::size_t dim,
                                     std::vector<double>& out) const {
  const auto& logit = logits_[dim];
  out.resize(logit.size());
  const double t = std::max(1.0, temperature_);
  double mx = logit[0];
  for (double l : logit) mx = std::max(mx, l);
  double sum = 0.0;
  for (std::size_t i = 0; i < logit.size(); ++i) {
    out[i] = std::exp((logit[i] - mx) / t);
    sum += out[i];
  }
  for (double& x : out) x /= sum;
}

void RlOptimizer::refresh_probabilities() {
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    fill_probabilities(d, probs_[d]);
    // Left-to-right, exactly as weighted_index's self-summing overload
    // would — the cached total must reproduce its bits.
    double total = 0.0;
    for (double p : probs_[d]) total += p;
    totals_[d] = total;
  }
  probs_fresh_ = true;
}

std::vector<double> RlOptimizer::policy(std::size_t dim) const {
  if (dim >= logits_.size()) throw std::out_of_range("RlOptimizer::policy");
  std::vector<double> p;
  fill_probabilities(dim, p);
  return p;
}

Design RlOptimizer::propose(util::Rng& rng) {
  if (!probs_fresh_) refresh_probabilities();
  last_choice_.clear();
  last_choice_.reserve(space_.dimensions());
  for (std::size_t d = 0; d < space_.dimensions(); ++d) {
    last_choice_.push_back(
        static_cast<int>(rng.weighted_index(probs_[d], totals_[d])));
  }
  return space_.decode(last_choice_);
}

void RlOptimizer::feedback(const Observation& obs) {
  // REINFORCE on the episode that produced `obs`. If feedback arrives for a
  // design other than the last proposal (e.g. replayed history), re-encode.
  const std::vector<int>* choice = &last_choice_;
  std::vector<int> encoded;
  if (last_choice_.empty() || !space_.decodes_to(last_choice_, obs.design)) {
    if (!space_.contains(obs.design)) return;  // outside our space: ignore
    encoded = space_.encode(obs.design);
    choice = &encoded;
  }

  const double baseline =
      baseline_.initialized() ? baseline_.value() : obs.reward;
  const double advantage = obs.reward - baseline;
  baseline_.update(obs.reward);

  // The gradient needs the probabilities the policy holds *before* this
  // update — exactly what the cache still contains after the propose that
  // produced `obs` (logits and temperature are untouched in between).
  if (!probs_fresh_) refresh_probabilities();
  for (std::size_t d = 0; d < logits_.size(); ++d) {
    const auto& p = probs_[d];
    const auto chosen = static_cast<std::size_t>((*choice)[d]);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = (i == chosen ? 1.0 - p[i] : -p[i]);
      logits_[d][i] += opts_.learning_rate * advantage * grad;
    }
  }
  temperature_ = 1.0 + (temperature_ - 1.0) * opts_.temperature_decay;
  probs_fresh_ = false;
  ++episodes_;
  last_choice_.clear();
}

}  // namespace lcda::search
