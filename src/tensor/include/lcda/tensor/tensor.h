#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "lcda/util/rng.h"

namespace lcda::tensor {

/// Dense row-major float tensor. Layout convention for images is NCHW.
///
/// This is deliberately a simple value type: the training workloads in this
/// project are small CNNs, so clarity and testability win over fancy
/// expression templates. All shape errors throw std::invalid_argument.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape);

  /// Builds from explicit data (size must match the shape's element count).
  Tensor(std::vector<int> shape, std::vector<float> data);

  [[nodiscard]] static Tensor zeros(std::vector<int> shape);
  [[nodiscard]] static Tensor full(std::vector<int> shape, float value);
  /// He-normal initialization with fan_in; standard for ReLU networks.
  [[nodiscard]] static Tensor he_normal(std::vector<int> shape, int fan_in,
                                        util::Rng& rng);
  /// Uniform in [lo, hi).
  [[nodiscard]] static Tensor uniform(std::vector<int> shape, float lo, float hi,
                                      util::Rng& rng);

  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] int dim(std::size_t i) const;
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] float* raw() { return data_.data(); }
  [[nodiscard]] const float* raw() const { return data_.data(); }

  /// Flat element access.
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// Multi-dimensional access (bounds-checked in debug builds only for 2- and
  /// 4-d convenience forms used throughout the nn library).
  [[nodiscard]] float& at(int i, int j);
  [[nodiscard]] float at(int i, int j) const;
  [[nodiscard]] float& at(int n, int c, int h, int w);
  [[nodiscard]] float at(int n, int c, int h, int w) const;

  /// Returns a reshaped copy sharing no storage; element count must match.
  [[nodiscard]] Tensor reshaped(std::vector<int> new_shape) const;

  /// In-place fill.
  void fill(float value);

  /// Elementwise in-place operations.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);

  /// Sum of all elements / L2 norm — handy in tests and gradient checks.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double l2_norm() const;
  [[nodiscard]] float max_abs() const;

  /// "[2, 3, 4]" — for error messages.
  [[nodiscard]] std::string shape_str() const;

  /// True when shapes are identical.
  [[nodiscard]] bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape; throws on non-positive dims.
[[nodiscard]] std::size_t shape_size(std::span<const int> shape);

}  // namespace lcda::tensor
