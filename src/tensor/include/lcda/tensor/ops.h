#pragma once

#include <vector>

#include "lcda/tensor/tensor.h"

namespace lcda::tensor {

/// C = A(MxK) * B(KxN). C must be MxN and is overwritten.
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T(KxM -> MxK? no: A is KxM, result is MxN using A^T) * B(KxN).
/// Explicitly: C[m][n] = sum_k A[k][m] * B[k][n].
void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c);

/// C[m][n] = sum_k A[m][k] * B[n][k]  (i.e. A * B^T).
void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c);

/// Geometry of a convolution / pooling window application.
struct ConvGeom {
  int in_h = 0, in_w = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  [[nodiscard]] int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  [[nodiscard]] int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// im2col for one image: input (C,H,W) -> columns (C*K*K, out_h*out_w).
/// `input` points at the start of an image inside an NCHW tensor.
void im2col(const float* input, int channels, const ConvGeom& g, float* columns);

/// col2im scatter-add inverse of im2col (gradient path).
void col2im(const float* columns, int channels, const ConvGeom& g, float* input_grad);

/// Convolution forward for a batch:
///   x (N,Cin,H,W), w (Cout,Cin,K,K), bias (Cout) -> y (N,Cout,outH,outW).
/// `scratch` holds the im2col buffer and is resized as needed (reused across
/// calls to avoid per-batch allocation).
void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const ConvGeom& g, Tensor& y, std::vector<float>& scratch);

/// Convolution backward. Computes dx (same shape as x), dw, dbias given dy.
/// Any of the output pointers may be null to skip that gradient.
void conv2d_backward(const Tensor& x, const Tensor& w, const ConvGeom& g,
                     const Tensor& dy, Tensor* dx, Tensor* dw, Tensor* dbias,
                     std::vector<float>& scratch);

/// 2x2 stride-2 max pooling forward; records argmax indices for backward.
void maxpool2x2_forward(const Tensor& x, Tensor& y, std::vector<int>& argmax);

/// Max pooling backward using recorded argmax indices.
void maxpool2x2_backward(const Tensor& dy, const std::vector<int>& argmax,
                         Tensor& dx);

/// Elementwise ReLU forward (y may alias x).
void relu_forward(const Tensor& x, Tensor& y);

/// ReLU backward: dx = dy * (x > 0).
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Dense forward: x (N,In) * w (In,Out) + bias (Out) -> y (N,Out).
void dense_forward(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y);

/// Dense backward.
void dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                    Tensor* dx, Tensor* dw, Tensor* dbias);

/// Row-wise softmax: logits (N,C) -> probs (N,C). Numerically stabilized.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy of probs (N,C) against integer labels; also emits
/// dlogits = (probs - onehot)/N, the gradient w.r.t. the logits.
double cross_entropy_loss(const Tensor& probs, std::span<const int> labels,
                          Tensor& dlogits);

/// argmax per row of an (N,C) tensor.
std::vector<int> argmax_rows(const Tensor& t);

}  // namespace lcda::tensor
