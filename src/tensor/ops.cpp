#include "lcda/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lcda::tensor {

namespace {
void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor, got " +
                                t.shape_str());
  }
}
}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "gemm:A");
  check_matrix(b, "gemm:B");
  check_matrix(c, "gemm:C");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm: dimension mismatch");
  }
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  std::fill(C, C + static_cast<std::size_t>(m) * n, 0.0f);
  // ikj loop order: streams through B and C rows — cache friendly.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = A[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* Brow = B + static_cast<std::size_t>(kk) * n;
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
    }
  }
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "gemm_at_b:A");
  check_matrix(b, "gemm_at_b:B");
  check_matrix(c, "gemm_at_b:C");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_at_b: dimension mismatch");
  }
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  std::fill(C, C + static_cast<std::size_t>(m) * n, 0.0f);
  for (int kk = 0; kk < k; ++kk) {
    const float* Arow = A + static_cast<std::size_t>(kk) * m;
    const float* Brow = B + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = Arow[i];
      if (aki == 0.0f) continue;
      float* Crow = C + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) Crow[j] += aki * Brow[j];
    }
  }
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "gemm_a_bt:A");
  check_matrix(b, "gemm_a_bt:B");
  check_matrix(c, "gemm_a_bt:C");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_a_bt: dimension mismatch");
  }
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  for (int i = 0; i < m; ++i) {
    const float* Arow = A + static_cast<std::size_t>(i) * k;
    float* Crow = C + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* Brow = B + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += Arow[kk] * Brow[kk];
      Crow[j] = acc;
    }
  }
}

void im2col(const float* input, int channels, const ConvGeom& g, float* columns) {
  const int oh = g.out_h(), ow = g.out_w();
  const int k = g.kernel;
  // columns layout: row = (c*k*k + ki*k + kj), col = (y*ow + x)
  for (int c = 0; c < channels; ++c) {
    const float* img = input + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        float* dst = columns + (static_cast<std::size_t>(c) * k * k + ki * k + kj) *
                                   (static_cast<std::size_t>(oh) * ow);
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride + ki - g.pad;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride + kj - g.pad;
            const bool in_bounds = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
            dst[static_cast<std::size_t>(y) * ow + x] =
                in_bounds ? img[static_cast<std::size_t>(iy) * g.in_w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, int channels, const ConvGeom& g, float* input_grad) {
  const int oh = g.out_h(), ow = g.out_w();
  const int k = g.kernel;
  for (int c = 0; c < channels; ++c) {
    float* img = input_grad + static_cast<std::size_t>(c) * g.in_h * g.in_w;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        const float* src = columns +
                           (static_cast<std::size_t>(c) * k * k + ki * k + kj) *
                               (static_cast<std::size_t>(oh) * ow);
        for (int y = 0; y < oh; ++y) {
          const int iy = y * g.stride + ki - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * g.stride + kj - g.pad;
            if (ix < 0 || ix >= g.in_w) continue;
            img[static_cast<std::size_t>(iy) * g.in_w + ix] +=
                src[static_cast<std::size_t>(y) * ow + x];
          }
        }
      }
    }
  }
}

void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const ConvGeom& g, Tensor& y, std::vector<float>& scratch) {
  const int n = x.dim(0), cin = x.dim(1);
  const int cout = w.dim(0), k = w.dim(2);
  if (w.dim(1) != cin || w.dim(3) != k || k != g.kernel) {
    throw std::invalid_argument("conv2d_forward: weight shape mismatch");
  }
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t col_rows = static_cast<std::size_t>(cin) * k * k;
  const std::size_t col_cols = static_cast<std::size_t>(oh) * ow;
  scratch.resize(col_rows * col_cols);

  const std::size_t img_in = static_cast<std::size_t>(cin) * g.in_h * g.in_w;
  const std::size_t img_out = static_cast<std::size_t>(cout) * oh * ow;

  for (int i = 0; i < n; ++i) {
    im2col(x.raw() + i * img_in, cin, g, scratch.data());
    // y_img (cout x col_cols) = W (cout x col_rows) * columns
    const float* W = w.raw();
    float* Y = y.raw() + i * img_out;
    for (int co = 0; co < cout; ++co) {
      float* yrow = Y + static_cast<std::size_t>(co) * col_cols;
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(co)];
      std::fill(yrow, yrow + col_cols, b);
      const float* wrow = W + static_cast<std::size_t>(co) * col_rows;
      for (std::size_t r = 0; r < col_rows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        const float* crow = scratch.data() + r * col_cols;
        for (std::size_t j = 0; j < col_cols; ++j) yrow[j] += wv * crow[j];
      }
    }
  }
}

void conv2d_backward(const Tensor& x, const Tensor& w, const ConvGeom& g,
                     const Tensor& dy, Tensor* dx, Tensor* dw, Tensor* dbias,
                     std::vector<float>& scratch) {
  const int n = x.dim(0), cin = x.dim(1);
  const int cout = w.dim(0), k = w.dim(2);
  const int oh = g.out_h(), ow = g.out_w();
  const std::size_t col_rows = static_cast<std::size_t>(cin) * k * k;
  const std::size_t col_cols = static_cast<std::size_t>(oh) * ow;
  const std::size_t img_in = static_cast<std::size_t>(cin) * g.in_h * g.in_w;
  const std::size_t img_out = static_cast<std::size_t>(cout) * oh * ow;

  // scratch holds both the forward columns and the gradient columns.
  scratch.resize(2 * col_rows * col_cols);
  float* cols = scratch.data();
  float* dcols = scratch.data() + col_rows * col_cols;

  if (dw) dw->fill(0.0f);
  if (dbias) dbias->fill(0.0f);
  if (dx) dx->fill(0.0f);

  for (int i = 0; i < n; ++i) {
    const float* DY = dy.raw() + i * img_out;

    if (dbias) {
      for (int co = 0; co < cout; ++co) {
        const float* dyrow = DY + static_cast<std::size_t>(co) * col_cols;
        float acc = 0.0f;
        for (std::size_t j = 0; j < col_cols; ++j) acc += dyrow[j];
        (*dbias)[static_cast<std::size_t>(co)] += acc;
      }
    }

    if (dw) {
      im2col(x.raw() + i * img_in, cin, g, cols);
      // dW (cout x col_rows) += dy_img (cout x col_cols) * cols^T
      for (int co = 0; co < cout; ++co) {
        const float* dyrow = DY + static_cast<std::size_t>(co) * col_cols;
        float* dwrow = dw->raw() + static_cast<std::size_t>(co) * col_rows;
        for (std::size_t r = 0; r < col_rows; ++r) {
          const float* crow = cols + r * col_cols;
          float acc = 0.0f;
          for (std::size_t j = 0; j < col_cols; ++j) acc += dyrow[j] * crow[j];
          dwrow[r] += acc;
        }
      }
    }

    if (dx) {
      // dcols (col_rows x col_cols) = W^T (col_rows x cout) * dy_img
      std::fill(dcols, dcols + col_rows * col_cols, 0.0f);
      for (int co = 0; co < cout; ++co) {
        const float* wrow = w.raw() + static_cast<std::size_t>(co) * col_rows;
        const float* dyrow = DY + static_cast<std::size_t>(co) * col_cols;
        for (std::size_t r = 0; r < col_rows; ++r) {
          const float wv = wrow[r];
          if (wv == 0.0f) continue;
          float* drow = dcols + r * col_cols;
          for (std::size_t j = 0; j < col_cols; ++j) drow[j] += wv * dyrow[j];
        }
      }
      col2im(dcols, cin, g, dx->raw() + i * img_in);
    }
  }
}

void maxpool2x2_forward(const Tensor& x, Tensor& y, std::vector<int>& argmax) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / 2, ow = w / 2;
  argmax.assign(static_cast<std::size_t>(n) * c * oh * ow, 0);
  std::size_t out_idx = 0;
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      for (int y0 = 0; y0 < oh; ++y0) {
        for (int x0 = 0; x0 < ow; ++x0) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const int iy = y0 * 2 + dy, ix = x0 * 2 + dx;
              const std::size_t idx =
                  ((static_cast<std::size_t>(i) * c + ch) * h + iy) * w + ix;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = static_cast<int>(idx);
              }
            }
          }
          y[out_idx] = best;
          argmax[out_idx] = best_idx;
          ++out_idx;
        }
      }
    }
  }
}

void maxpool2x2_backward(const Tensor& dy, const std::vector<int>& argmax,
                         Tensor& dx) {
  dx.fill(0.0f);
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    dx[static_cast<std::size_t>(argmax[i])] += dy[i];
  }
}

void relu_forward(const Tensor& x, Tensor& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  for (std::size_t i = 0; i < x.size(); ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void dense_forward(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y) {
  gemm(x, w, y);
  const int n = y.dim(0), out = y.dim(1);
  if (!bias.empty()) {
    for (int i = 0; i < n; ++i) {
      float* row = y.raw() + static_cast<std::size_t>(i) * out;
      for (int j = 0; j < out; ++j) row[j] += bias[static_cast<std::size_t>(j)];
    }
  }
}

void dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                    Tensor* dx, Tensor* dw, Tensor* dbias) {
  if (dx) gemm_a_bt(dy, w, *dx);          // dx (N,In) = dy (N,Out) * W^T
  if (dw) gemm_at_b(x, dy, *dw);          // dw (In,Out) = x^T * dy
  if (dbias) {
    dbias->fill(0.0f);
    const int n = dy.dim(0), out = dy.dim(1);
    for (int i = 0; i < n; ++i) {
      const float* row = dy.raw() + static_cast<std::size_t>(i) * out;
      for (int j = 0; j < out; ++j) (*dbias)[static_cast<std::size_t>(j)] += row[j];
    }
  }
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  const int n = logits.dim(0), c = logits.dim(1);
  for (int i = 0; i < n; ++i) {
    const float* in = logits.raw() + static_cast<std::size_t>(i) * c;
    float* out = probs.raw() + static_cast<std::size_t>(i) * c;
    float mx = in[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, in[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < c; ++j) out[j] *= inv;
  }
}

double cross_entropy_loss(const Tensor& probs, std::span<const int> labels,
                          Tensor& dlogits) {
  const int n = probs.dim(0), c = probs.dim(1);
  if (labels.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("cross_entropy_loss: label count mismatch");
  }
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const int label = labels[static_cast<std::size_t>(i)];
    if (label < 0 || label >= c) {
      throw std::invalid_argument("cross_entropy_loss: label out of range");
    }
    const float* p = probs.raw() + static_cast<std::size_t>(i) * c;
    float* d = dlogits.raw() + static_cast<std::size_t>(i) * c;
    loss -= std::log(std::max(p[label], 1e-12f));
    for (int j = 0; j < c; ++j) d[j] = p[j] * invn;
    d[label] -= invn;
  }
  return loss / n;
}

std::vector<int> argmax_rows(const Tensor& t) {
  const int n = t.dim(0), c = t.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float* row = t.raw() + static_cast<std::size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace lcda::tensor
