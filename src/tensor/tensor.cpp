#include "lcda/tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lcda::tensor {

std::size_t shape_size(std::span<const int> shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("shape dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<int> shape)
    : Tensor(std::vector<int>(shape)) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_size(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::he_normal(std::vector<int> shape, int fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in must be positive");
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / fan_in);
  for (auto& x : t.data_) x = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<int> shape, float lo, float hi, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

int Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim");
  return shape_[i];
}

float& Tensor::at(int i, int j) {
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float Tensor::at(int i, int j) const {
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float& Tensor::at(int n, int c, int h, int w) {
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[idx];
}
float Tensor::at(int n, int c, int h, int w) const {
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[idx];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace lcda::tensor
