#include "lcda/store/legacy_json.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <stdexcept>

#include "lcda/util/strings.h"

namespace lcda::store {

namespace {

constexpr std::string_view kLegacyFormat = "lcda-eval-cache-v1";

std::uint64_t parse_hex64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    throw std::runtime_error("legacy cache: bad hex id \"" + s + "\"");
  }
  return v;
}

}  // namespace

util::Json evaluation_to_json(const core::Evaluation& ev) {
  util::Json j = util::Json::object();
  j["accuracy"] = ev.accuracy;
  j["accuracy_stddev"] = ev.accuracy_stddev;

  util::Json c = util::Json::object();
  c["valid"] = ev.cost.valid;
  if (!ev.cost.invalid_reason.empty()) c["invalid_reason"] = ev.cost.invalid_reason;
  c["area_arrays_mm2"] = ev.cost.area_arrays_mm2;
  c["area_buffer_mm2"] = ev.cost.area_buffer_mm2;
  c["area_digital_mm2"] = ev.cost.area_digital_mm2;
  c["area_noc_mm2"] = ev.cost.area_noc_mm2;
  c["area_total_mm2"] = ev.cost.area_total_mm2;
  c["energy_adc_pj"] = ev.cost.energy_adc_pj;
  c["energy_xbar_pj"] = ev.cost.energy_xbar_pj;
  c["energy_dac_pj"] = ev.cost.energy_dac_pj;
  c["energy_digital_pj"] = ev.cost.energy_digital_pj;
  c["energy_buffer_pj"] = ev.cost.energy_buffer_pj;
  c["energy_noc_pj"] = ev.cost.energy_noc_pj;
  c["energy_total_pj"] = ev.cost.energy_total_pj;
  c["latency_ns"] = ev.cost.latency_ns;
  c["leakage_mw"] = ev.cost.leakage_mw;
  c["total_weights"] = ev.cost.total_weights;
  c["total_cells"] = ev.cost.total_cells;
  c["programming_energy_pj"] = ev.cost.programming_energy_pj;
  c["weight_sigma"] = ev.cost.weight_sigma;
  c["max_adc_deficit_bits"] = ev.cost.max_adc_deficit_bits;
  j["cost"] = c;
  return j;
}

core::Evaluation evaluation_from_json(const util::Json& j) {
  core::Evaluation ev;
  ev.accuracy = j.at("accuracy").as_double();
  ev.accuracy_stddev = j.at("accuracy_stddev").as_double();
  const util::Json& c = j.at("cost");
  ev.cost.valid = c.at("valid").as_bool();
  if (c.contains("invalid_reason")) {
    ev.cost.invalid_reason = c.at("invalid_reason").as_string();
  }
  ev.cost.area_arrays_mm2 = c.at("area_arrays_mm2").as_double();
  ev.cost.area_buffer_mm2 = c.at("area_buffer_mm2").as_double();
  ev.cost.area_digital_mm2 = c.at("area_digital_mm2").as_double();
  ev.cost.area_noc_mm2 = c.at("area_noc_mm2").as_double();
  ev.cost.area_total_mm2 = c.at("area_total_mm2").as_double();
  ev.cost.energy_adc_pj = c.at("energy_adc_pj").as_double();
  ev.cost.energy_xbar_pj = c.at("energy_xbar_pj").as_double();
  ev.cost.energy_dac_pj = c.at("energy_dac_pj").as_double();
  ev.cost.energy_digital_pj = c.at("energy_digital_pj").as_double();
  ev.cost.energy_buffer_pj = c.at("energy_buffer_pj").as_double();
  ev.cost.energy_noc_pj = c.at("energy_noc_pj").as_double();
  ev.cost.energy_total_pj = c.at("energy_total_pj").as_double();
  ev.cost.latency_ns = c.at("latency_ns").as_double();
  ev.cost.leakage_mw = c.at("leakage_mw").as_double();
  ev.cost.total_weights = c.at("total_weights").as_int();
  ev.cost.total_cells = c.at("total_cells").as_int();
  ev.cost.programming_energy_pj = c.at("programming_energy_pj").as_double();
  ev.cost.weight_sigma = c.at("weight_sigma").as_double();
  ev.cost.max_adc_deficit_bits =
      static_cast<int>(c.at("max_adc_deficit_bits").as_int());
  return ev;
}

std::string legacy_cache_path(const std::string& directory,
                              std::uint64_t fingerprint) {
  return directory + "/" + util::hex_u64(fingerprint) + ".json";
}

std::vector<LegacyEntry> parse_legacy_cache(const std::string& body,
                                            std::uint64_t fingerprint) {
  util::Json doc;
  try {
    doc = util::Json::parse(body);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string("corrupt JSON: ") + e.what());
  }
  if (!doc.contains("format") ||
      doc.at("format").as_string() != kLegacyFormat) {
    throw std::runtime_error("not a " + std::string(kLegacyFormat) + " file");
  }
  if (parse_hex64(doc.at("fingerprint").as_string()) != fingerprint) {
    throw std::runtime_error("fingerprint mismatch (file moved between studies?)");
  }
  std::vector<LegacyEntry> entries;
  std::uint64_t next_seq = 0;
  for (const util::Json& entry : doc.at("entries").elements()) {
    LegacyEntry e;
    e.design_hash = parse_hex64(entry.at("design").as_string());
    e.evaluation = evaluation_from_json(entry.at("evaluation"));
    // Age survives round trips via a per-entry sequence number; files from
    // before eviction existed carry none and age by file order.
    e.seq = entry.contains("seq")
                ? static_cast<std::uint64_t>(entry.at("seq").as_int())
                : next_seq;
    next_seq = std::max(next_seq, e.seq + 1);
    entries.push_back(std::move(e));
  }
  return entries;
}

void write_legacy_cache_file(const std::string& path, std::uint64_t fingerprint,
                             const std::vector<LegacyEntry>& entries) {
  std::vector<LegacyEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const LegacyEntry& a, const LegacyEntry& b) {
              return a.design_hash < b.design_hash;
            });
  util::Json doc = util::Json::object();
  doc["format"] = kLegacyFormat;
  doc["fingerprint"] = util::hex_u64(fingerprint);
  util::Json arr = util::Json::array();
  for (const LegacyEntry& e : sorted) {
    util::Json entry = util::Json::object();
    entry["design"] = util::hex_u64(e.design_hash);
    entry["seq"] = static_cast<long long>(e.seq);
    entry["evaluation"] = evaluation_to_json(e.evaluation);
    arr.push_back(entry);
  }
  doc["entries"] = arr;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("legacy cache: cannot write " + path);
  out << doc.dump(1) << '\n';
  if (!out.flush()) {
    throw std::runtime_error("legacy cache: write failed for " + path);
  }
}

}  // namespace lcda::store
