#include <algorithm>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "lcda/obs/trace.h"
#include "lcda/store/eval_store.h"
#include "lcda/util/rng.h"

namespace lcda::store {

namespace fs = std::filesystem;

namespace {

struct ScannedInputs {
  std::vector<std::string> readable;    ///< files that opened cleanly
  std::vector<std::string> damaged;     ///< files that failed header checks
  std::vector<SegmentView> views;       ///< parallel to `readable`
};

/// Opens every *.seg under segments/ and index/. A file that vanishes
/// mid-scan (a concurrent compaction finished first) is skipped silently.
ScannedInputs scan_inputs(const std::string& directory) {
  ScannedInputs inputs;
  std::vector<std::string> paths = list_segment_files(directory + "/index");
  for (const std::string& path : list_segment_files(directory + "/segments")) {
    paths.push_back(path);
  }
  for (const std::string& path : paths) {
    std::string error;
    std::optional<SegmentView> view = SegmentView::open(path, &error);
    if (!view) {
      if (!error.empty()) inputs.damaged.push_back(path);
      continue;
    }
    inputs.readable.push_back(path);
    inputs.views.push_back(std::move(*view));
  }
  return inputs;
}

}  // namespace

FsckReport fsck(const std::string& directory) {
  FsckReport report;
  const ScannedInputs inputs = scan_inputs(directory);
  report.bad_files = inputs.damaged.size();
  for (const SegmentView& view : inputs.views) {
    ++report.files;
    bool have_prev = false;
    StoreRecord prev;
    for (std::size_t i = 0; i < view.count(); ++i) {
      if (!record_checksum_ok(view.record(i))) {
        ++report.bad_records;
        have_prev = false;  // can't order-check against a corrupt record
        continue;
      }
      StoreRecord record = decode_record(view.record(i));
      if (have_prev && record.key_less(prev)) {
        ++report.bad_records;  // sort-order violation breaks binary probes
      }
      prev = std::move(record);
      have_prev = true;
      ++report.records;
    }
  }
  return report;
}

CompactionReport compact_store(const std::string& directory, Budget budget,
                               std::size_t buckets) {
  obs::Span span("store.compact");
  if (buckets == 0) buckets = 1;
  CompactionReport report;
  ScannedInputs inputs = scan_inputs(directory);
  report.input_files = inputs.readable.size();
  report.skipped_files = inputs.damaged.size();

  std::vector<StoreRecord> records;
  for (const SegmentView& view : inputs.views) {
    for (std::size_t i = 0; i < view.count(); ++i) {
      if (!record_checksum_ok(view.record(i))) {
        ++report.corrupt_dropped;
        continue;
      }
      records.push_back(decode_record(view.record(i)));
    }
  }

  // Dedupe re-published full keys, keeping the oldest sequence number so a
  // record's age is stable across arbitrarily many compactions.
  std::sort(records.begin(), records.end(),
            [](const StoreRecord& a, const StoreRecord& b) {
              return a.key_less(b);
            });
  std::vector<StoreRecord> kept;
  kept.reserve(records.size());
  for (StoreRecord& record : records) {
    if (!kept.empty() &&
        kept.back().eval_fingerprint == record.eval_fingerprint &&
        kept.back().design_hash == record.design_hash &&
        kept.back().stream_fingerprint == record.stream_fingerprint) {
      ++report.duplicates_dropped;  // kept.back() has the smaller seq
      continue;
    }
    kept.push_back(std::move(record));
  }

  // Budget: oldest-first eviction by (seq, key) — total order, so the
  // surviving set is a pure function of the input record set.
  std::size_t drop = 0;
  if (budget.max_entries > 0 && kept.size() > budget.max_entries) {
    drop = kept.size() - budget.max_entries;
  }
  if (budget.max_bytes > 0) {
    const std::size_t fixed = buckets * kHeaderSize;
    const std::size_t fit = budget.max_bytes > fixed
                                ? (budget.max_bytes - fixed) / kRecordSize
                                : 0;
    if (kept.size() - drop > fit) drop = kept.size() - fit;
  }
  if (drop > 0) {
    std::vector<std::size_t> order(kept.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (kept[a].seq != kept[b].seq) return kept[a].seq < kept[b].seq;
      return kept[a].key_less(kept[b]);
    });
    std::vector<char> dropped(kept.size(), 0);
    for (std::size_t i = 0; i < drop; ++i) dropped[order[i]] = 1;
    std::vector<StoreRecord> survivors;
    survivors.reserve(kept.size() - drop);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (!dropped[i]) survivors.push_back(std::move(kept[i]));
    }
    kept = std::move(survivors);
    report.evicted = drop;
  }
  report.records_kept = kept.size();

  // Partition the (still sorted) survivors into their buckets and publish
  // every bucket — atomically, BEFORE any input is deleted, so concurrent
  // readers can reach every record at every instant. Empty buckets are
  // published too: the rename wipes stale same-name predecessors.
  std::vector<std::vector<StoreRecord>> parts(buckets);
  for (StoreRecord& record : kept) {
    const std::size_t b = static_cast<std::size_t>(
        util::hash_combine(record.eval_fingerprint, record.design_hash) %
        static_cast<std::uint64_t>(buckets));
    parts[b].push_back(std::move(record));
  }
  std::error_code ec;
  fs::create_directories(directory + "/index", ec);
  if (ec) {
    throw std::runtime_error("compact_store: cannot create " + directory +
                             "/index: " + ec.message());
  }
  std::unordered_set<std::string> published;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::string path = directory + "/index/bucket-" + std::to_string(b) +
                             "-of-" + std::to_string(buckets) + ".seg";
    publish_file(path, serialize_segment(parts[b]));
    published.insert(path);
  }

  // Only now unlink the merged inputs (and damaged files — this is the
  // repair pass that actually drops them). A bucket that was just
  // republished under its own name was replaced by the rename, not merged
  // away, so it must survive. Live readers keep their mmap'd views.
  for (const std::string& path : inputs.readable) {
    if (published.count(path) == 0) fs::remove(path, ec);
  }
  for (const std::string& path : inputs.damaged) {
    fs::remove(path, ec);
  }
  return report;
}

}  // namespace lcda::store
