#include "lcda/store/segment.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "lcda/util/rng.h"

namespace lcda::store {

namespace {

constexpr std::uint32_t kFlagCostValid = 1u << 0;
constexpr std::uint32_t kFlagHasReplay = 1u << 1;

std::uint64_t checksum_bytes(const std::uint8_t* p, std::size_t n) {
  return util::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(p), n));
}

void put_u64(std::uint8_t* p, std::size_t off, std::uint64_t v) {
  std::memcpy(p + off, &v, sizeof v);
}

void put_u32(std::uint8_t* p, std::size_t off, std::uint32_t v) {
  std::memcpy(p + off, &v, sizeof v);
}

void put_f64(std::uint8_t* p, std::size_t off, double v) {
  std::memcpy(p + off, &v, sizeof v);
}

void put_i64(std::uint8_t* p, std::size_t off, std::int64_t v) {
  std::memcpy(p + off, &v, sizeof v);
}

std::uint64_t get_u64(const std::uint8_t* p, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}

double get_f64(const std::uint8_t* p, std::size_t off) {
  double v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}

std::int64_t get_i64(const std::uint8_t* p, std::size_t off) {
  std::int64_t v;
  std::memcpy(&v, p + off, sizeof v);
  return v;
}

}  // namespace

bool record_encodable(const StoreRecord& record) {
  return record.evaluation.cost.invalid_reason.size() <= kMaxReason;
}

void encode_record(const StoreRecord& record, std::uint8_t* out) {
  const core::Evaluation& ev = record.evaluation;
  const cim::CostReport& c = ev.cost;
  std::memset(out, 0, kRecordSize);
  put_u64(out, 0, record.eval_fingerprint);
  put_u64(out, 8, record.design_hash);
  put_u64(out, 16, record.stream_fingerprint);
  put_u64(out, 24, record.seq);
  std::uint32_t flags = 0;
  if (c.valid) flags |= kFlagCostValid;
  if (ev.has_replay_params) flags |= kFlagHasReplay;
  put_u32(out, 32, flags);
  put_u32(out, 36, static_cast<std::uint32_t>(c.invalid_reason.size()));
  const double doubles[20] = {
      ev.accuracy,        ev.accuracy_stddev,  ev.replay_mean,
      ev.replay_spread,   c.area_arrays_mm2,   c.area_buffer_mm2,
      c.area_digital_mm2, c.area_noc_mm2,      c.area_total_mm2,
      c.energy_adc_pj,    c.energy_xbar_pj,    c.energy_dac_pj,
      c.energy_digital_pj, c.energy_buffer_pj, c.energy_noc_pj,
      c.energy_total_pj,  c.latency_ns,        c.leakage_mw,
      c.programming_energy_pj, c.weight_sigma};
  for (std::size_t i = 0; i < 20; ++i) put_f64(out, 40 + i * 8, doubles[i]);
  put_i64(out, 200, static_cast<std::int64_t>(c.total_weights));
  put_i64(out, 208, static_cast<std::int64_t>(c.total_cells));
  put_i64(out, 216, static_cast<std::int64_t>(c.max_adc_deficit_bits));
  std::memcpy(out + 224, c.invalid_reason.data(), c.invalid_reason.size());
  put_u64(out, kRecordSize - 8, checksum_bytes(out, kRecordSize - 8));
}

StoreRecord decode_record(const std::uint8_t* bytes) {
  StoreRecord record;
  record.eval_fingerprint = get_u64(bytes, 0);
  record.design_hash = get_u64(bytes, 8);
  record.stream_fingerprint = get_u64(bytes, 16);
  record.seq = get_u64(bytes, 24);
  const std::uint32_t flags = get_u32(bytes, 32);
  const std::uint32_t reason_len =
      std::min<std::uint32_t>(get_u32(bytes, 36), kMaxReason);

  core::Evaluation& ev = record.evaluation;
  cim::CostReport& c = ev.cost;
  ev.accuracy = get_f64(bytes, 40);
  ev.accuracy_stddev = get_f64(bytes, 48);
  ev.replay_mean = get_f64(bytes, 56);
  ev.replay_spread = get_f64(bytes, 64);
  c.area_arrays_mm2 = get_f64(bytes, 72);
  c.area_buffer_mm2 = get_f64(bytes, 80);
  c.area_digital_mm2 = get_f64(bytes, 88);
  c.area_noc_mm2 = get_f64(bytes, 96);
  c.area_total_mm2 = get_f64(bytes, 104);
  c.energy_adc_pj = get_f64(bytes, 112);
  c.energy_xbar_pj = get_f64(bytes, 120);
  c.energy_dac_pj = get_f64(bytes, 128);
  c.energy_digital_pj = get_f64(bytes, 136);
  c.energy_buffer_pj = get_f64(bytes, 144);
  c.energy_noc_pj = get_f64(bytes, 152);
  c.energy_total_pj = get_f64(bytes, 160);
  c.latency_ns = get_f64(bytes, 168);
  c.leakage_mw = get_f64(bytes, 176);
  c.programming_energy_pj = get_f64(bytes, 184);
  c.weight_sigma = get_f64(bytes, 192);
  c.total_weights = get_i64(bytes, 200);
  c.total_cells = get_i64(bytes, 208);
  c.max_adc_deficit_bits = static_cast<int>(get_i64(bytes, 216));
  c.valid = (flags & kFlagCostValid) != 0;
  ev.has_replay_params = (flags & kFlagHasReplay) != 0;
  c.invalid_reason.assign(reinterpret_cast<const char*>(bytes) + 224,
                          reason_len);
  return record;
}

bool record_checksum_ok(const std::uint8_t* bytes) {
  return get_u64(bytes, kRecordSize - 8) ==
         checksum_bytes(bytes, kRecordSize - 8);
}

std::optional<SegmentView> SegmentView::open(const std::string& path,
                                             std::string* error) {
  if (error) error->clear();
  std::string map_error;
  util::MmapFile file = util::MmapFile::open(path, &map_error);
  if (!map_error.empty()) {
    // A file that vanished between listing and open is the live-compaction
    // race, not damage: report "" so the caller skips it silently.
    if (error && std::filesystem::exists(path)) *error = map_error;
    return std::nullopt;
  }
  if (file.size() < kHeaderSize) {
    if (error) *error = path + ": truncated header";
    return std::nullopt;
  }
  const std::uint8_t* h = file.data();
  if (std::memcmp(h, kSegmentMagic, sizeof kSegmentMagic) != 0) {
    if (error) *error = path + ": bad magic (not a lcda-store-v2 segment)";
    return std::nullopt;
  }
  if (get_u64(h, 24) != checksum_bytes(h, 24)) {
    if (error) *error = path + ": header checksum mismatch";
    return std::nullopt;
  }
  const std::uint64_t count = get_u64(h, 8);
  if (file.size() != kHeaderSize + count * kRecordSize) {
    if (error) *error = path + ": truncated (header claims " +
                        std::to_string(count) + " records)";
    return std::nullopt;
  }
  SegmentView view;
  view.path_ = path;
  view.count_ = static_cast<std::size_t>(count);
  view.max_seq_ = get_u64(h, 16);
  view.file_ = std::move(file);
  return view;
}

std::size_t SegmentView::lower_bound(std::uint64_t eval_fp,
                                     std::uint64_t design_hash) const {
  std::size_t lo = 0, hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint8_t* rec = record(mid);
    const std::uint64_t e = get_u64(rec, 0);
    const std::uint64_t d = get_u64(rec, 8);
    if (e < eval_fp || (e == eval_fp && d < design_hash)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool SegmentView::matches_pair(std::size_t i, std::uint64_t eval_fp,
                               std::uint64_t design_hash) const {
  if (i >= count_) return false;
  const std::uint8_t* rec = record(i);
  return get_u64(rec, 0) == eval_fp && get_u64(rec, 8) == design_hash;
}

std::vector<std::uint8_t> serialize_segment(
    const std::vector<StoreRecord>& records) {
  std::vector<std::uint8_t> bytes(kHeaderSize + records.size() * kRecordSize);
  std::uint8_t* h = bytes.data();
  std::memcpy(h, kSegmentMagic, sizeof kSegmentMagic);
  put_u64(h, 8, records.size());
  std::uint64_t max_seq = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    max_seq = std::max(max_seq, records[i].seq);
    encode_record(records[i], h + kHeaderSize + i * kRecordSize);
  }
  put_u64(h, 16, max_seq);
  put_u64(h, 24, checksum_bytes(h, 24));
  return bytes;
}

std::vector<std::string> list_segment_files(const std::string& directory) {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return paths;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.rfind(".seg") == name.size() - 4) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

bool parse_bucket_name(const std::string& filename, std::size_t* index,
                       std::size_t* count) {
  unsigned long i = 0, n = 0;
  int consumed = 0;
  if (std::sscanf(filename.c_str(), "bucket-%lu-of-%lu.seg%n", &i, &n,
                  &consumed) != 2 ||
      static_cast<std::size_t>(consumed) != filename.size() || n == 0 ||
      i >= n) {
    return false;
  }
  *index = i;
  *count = n;
  return true;
}

void publish_file(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  // Unique temp name per process AND per publish: concurrent writers must
  // never interleave into one temp file; rename makes the publish atomic.
  static std::atomic<unsigned long> publish_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(publish_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("store: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) throw std::runtime_error("store: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("store: rename to " + path + " failed");
  }
}

}  // namespace lcda::store
