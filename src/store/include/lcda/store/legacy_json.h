#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lcda/core/evaluator.h"
#include "lcda/util/json_lite.h"

namespace lcda::store {

/// JSON round-trip of an Evaluation's scalar payload, kept from the v1
/// flat-JSON PersistentEvalCache so its files can still be parsed (store-v2
/// migrates them at open) and so tests can fabricate v1 fixtures. Doubles
/// survive bit-for-bit (shortest-round-trip JSON numbers).
[[nodiscard]] util::Json evaluation_to_json(const core::Evaluation& ev);
[[nodiscard]] core::Evaluation evaluation_from_json(const util::Json& j);

/// One entry of a v1 cache file: design hash -> evaluation, plus the
/// insertion sequence number that carries its age into the store.
struct LegacyEntry {
  std::uint64_t design_hash = 0;
  std::uint64_t seq = 0;
  core::Evaluation evaluation;
};

/// `directory`/<hex fingerprint>.json — where v1 kept one study's cache.
[[nodiscard]] std::string legacy_cache_path(const std::string& directory,
                                            std::uint64_t fingerprint);

/// Parses a v1 ("lcda-eval-cache-v1") file body. Throws std::runtime_error
/// on anything unusable — corrupt JSON, foreign format tag, fingerprint
/// mismatch — which the store converts into a counted skip.
[[nodiscard]] std::vector<LegacyEntry> parse_legacy_cache(
    const std::string& body, std::uint64_t fingerprint);

/// Writes a v1-format cache file (test/fixture aid; the engine itself only
/// reads v1). Throws std::runtime_error on I/O failure.
void write_legacy_cache_file(const std::string& path, std::uint64_t fingerprint,
                             const std::vector<LegacyEntry>& entries);

}  // namespace lcda::store
