#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lcda/core/evaluator.h"
#include "lcda/util/mmap_file.h"

namespace lcda::store {

/// Binary segment file format ("lcda-store-v2"). A segment is an immutable,
/// atomically published file holding fixed-width evaluation records sorted
/// by (eval_fingerprint, design_hash, stream_fingerprint, seq):
///
///   [32-byte header][record 0][record 1]...[record count-1]
///
/// header:  magic "LCDASTR2" | u64 count | u64 max_seq | u64 fnv1a64 of the
///          first 24 bytes
/// record:  328 bytes, all integers little-endian, doubles as IEEE-754 bit
///          patterns (bit-exact round trips — the property that keeps warm
///          reruns trace-identical), terminated by a u64 fnv1a64 checksum
///          of the record's first 320 bytes.
///
/// Both the per-process append segments (`segments/`) and the compacted
/// index buckets (`index/`) use this one format; a bucket is just a segment
/// whose record set is the bucket's partition of the whole store.
inline constexpr char kSegmentMagic[8] = {'L', 'C', 'D', 'A',
                                          'S', 'T', 'R', '2'};
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kRecordSize = 328;
/// Capacity of a record's inline invalid_reason text. Evaluations whose
/// reason exceeds it are simply not persisted (the design is re-evaluated
/// deterministically on the next run), keeping records fixed-width.
inline constexpr std::size_t kMaxReason = 96;

/// One decoded store record: the three-part content key, the insertion
/// sequence number (smaller = older; the compactor's oldest-first eviction
/// order), and the evaluation payload. `evaluation.has_replay_params`
/// round-trips through a record flag, so cross-study consumers know whether
/// the deterministic part supports a Monte-Carlo replay.
struct StoreRecord {
  std::uint64_t eval_fingerprint = 0;
  std::uint64_t design_hash = 0;
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t seq = 0;
  core::Evaluation evaluation;

  /// Key order used throughout the store (sorting, probing, dedupe).
  [[nodiscard]] bool key_less(const StoreRecord& other) const {
    if (eval_fingerprint != other.eval_fingerprint) {
      return eval_fingerprint < other.eval_fingerprint;
    }
    if (design_hash != other.design_hash) return design_hash < other.design_hash;
    if (stream_fingerprint != other.stream_fingerprint) {
      return stream_fingerprint < other.stream_fingerprint;
    }
    return seq < other.seq;
  }
};

/// True when `record` fits the fixed-width layout (its invalid_reason text
/// is at most kMaxReason bytes).
[[nodiscard]] bool record_encodable(const StoreRecord& record);

/// Encodes `record` into exactly kRecordSize bytes at `out` (checksum
/// included). Pre-condition: record_encodable(record).
void encode_record(const StoreRecord& record, std::uint8_t* out);

/// Decodes the record at `bytes` (kRecordSize long). Does NOT verify the
/// checksum — call record_checksum_ok first.
[[nodiscard]] StoreRecord decode_record(const std::uint8_t* bytes);

/// Verifies the trailing checksum of the record at `bytes`.
[[nodiscard]] bool record_checksum_ok(const std::uint8_t* bytes);

/// Read view over one mmap'd segment file: zero-copy binary probes into the
/// sorted record array. open() validates the header (magic, version, count
/// vs file size, header checksum); per-record checksums are verified lazily
/// by the probe's caller, so opening a store costs O(files), not O(records).
class SegmentView {
 public:
  /// Maps and validates `path`. On failure returns std::nullopt and, if
  /// `error` is non-null, a one-line reason ("" means the file vanished —
  /// ENOENT, the live-compaction race — which callers skip silently).
  [[nodiscard]] static std::optional<SegmentView> open(const std::string& path,
                                                      std::string* error);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max_seq() const { return max_seq_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Pointer to record `i`'s bytes (kRecordSize long).
  [[nodiscard]] const std::uint8_t* record(std::size_t i) const {
    return file_.data() + kHeaderSize + i * kRecordSize;
  }

  /// First index whose key is >= (eval_fp, design_hash, 0), i.e. the start
  /// of that pair's run of records; count() when past the end.
  [[nodiscard]] std::size_t lower_bound(std::uint64_t eval_fp,
                                        std::uint64_t design_hash) const;

  /// True when record `i` carries exactly this (eval_fp, design_hash) pair.
  [[nodiscard]] bool matches_pair(std::size_t i, std::uint64_t eval_fp,
                                  std::uint64_t design_hash) const;

 private:
  util::MmapFile file_;
  std::string path_;
  std::size_t count_ = 0;
  std::uint64_t max_seq_ = 0;
};

/// Serializes `records` (must already be sorted by StoreRecord::key_less)
/// into a segment byte buffer, header and checksums included.
[[nodiscard]] std::vector<std::uint8_t> serialize_segment(
    const std::vector<StoreRecord>& records);

/// Sorted list of the "*.seg" files directly under `directory` (which may
/// not exist — empty result). Sorted so every reader maps files in one
/// deterministic order.
[[nodiscard]] std::vector<std::string> list_segment_files(
    const std::string& directory);

/// Parses an index bucket filename "bucket-<i>-of-<N>.seg" into its shard
/// coordinates. Returns false for any other name (the file is then probed
/// unconditionally, which is always safe).
[[nodiscard]] bool parse_bucket_name(const std::string& filename,
                                     std::size_t* index, std::size_t* count);

/// Publishes `bytes` as `path` through a uniquely named temp file in the
/// same directory and an atomic rename (concurrent writers can never tear
/// each other). Throws std::runtime_error on I/O failure — EvalStore::save
/// converts that into a counted, non-fatal warning.
void publish_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

}  // namespace lcda::store
