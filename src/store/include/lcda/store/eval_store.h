#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcda/core/evaluator.h"
#include "lcda/store/segment.h"

namespace lcda::store {

/// On-disk budget for one store directory. Both caps are 0 = unlimited.
/// Enforced by compaction with oldest-first eviction (per-record sequence
/// numbers round-trip through segments, so age survives merges): a save
/// that leaves the store over budget triggers a compaction pass, and
/// `lcda_run --store-compact` applies a budget by hand. Eviction never
/// changes a trace — an evicted entry is simply re-evaluated on the next
/// run, deterministically, to the identical value.
struct Budget {
  std::size_t max_entries = 0;  ///< cap on stored evaluations
  std::size_t max_bytes = 0;    ///< cap on total segment+index bytes
};

/// Content-addressed evaluation store: the successor of the flat-JSON
/// PersistentEvalCache behind the same lookup/insert contract.
///
/// On-disk layout under one `directory` shared by every study and worker
/// process:
///
///   segments/seg-<pid>-<n>-<hash>.seg   append-only per-process segments
///   index/bucket-<i>-of-<N>.seg         compacted index buckets
///   <hex fingerprint>.json              legacy v1 files awaiting migration
///
/// Records are keyed by (eval_fingerprint, design_hash, stream_fingerprint)
/// — the study fingerprint split into its evaluation-identity part (space,
/// evaluator, reward, noise: what legally determines an Evaluation) and its
/// stream-identity part (seed, strategy, episode budget, batch size: what
/// shapes the RNG stream). A full-key hit returns the byte-identical
/// Evaluation the same study computed before. A pair-key hit under a
/// *different* stream (lookup_shared) returns the deterministic part, which
/// the caller re-derives its own accuracy from by replaying the Monte-Carlo
/// draws with its own RNG stream — cross-study reuse that stays bit-exact.
///
/// Shared lookups consult ONLY the compacted index buckets, never live
/// segments: buckets change only under an explicit `--store-compact`, so a
/// run's shared-hit counters can never depend on what a concurrent process
/// published a moment earlier. Full-key lookups consult everything — any
/// record they can find is one this exact study wrote.
///
/// Saves append one new segment with this run's fresh entries (O(new), not
/// O(store)) and publish it via temp file + atomic rename; they never
/// rewrite existing files. Save failures degrade to a counted stderr
/// warning (save_failures()) instead of throwing — an I/O hiccup at the
/// finish line must not kill the study whose results are already in hand.
///
/// Unusable files (bad magic, checksum mismatch, truncation) are skipped
/// and counted per file (skipped_files()), with one stderr warning per file
/// per process; records that fail their checksum inside an otherwise
/// healthy file are skipped and counted per record (corrupt_records()).
/// Worst case is a cold start, never an abort.
///
/// Not thread-safe; the co-design loop consults one instance from its
/// driving thread. Multi-process safe: segments are immutable after their
/// atomic publish, and compaction keeps every record reachable (new bucket
/// files are published before the merged inputs are deleted; mmap'd views
/// survive the unlink) — concurrent readers, writers and one compactor can
/// share a directory.
class EvalStore {
 public:
  struct Options {
    std::string directory;
    std::uint64_t eval_fingerprint = 0;    ///< evaluation-identity namespace
    std::uint64_t stream_fingerprint = 0;  ///< stream-identity namespace
    /// Legacy v1 study fingerprint: when `directory/<hex>.json` exists its
    /// entries are imported (and the file deleted after the next
    /// successful save). 0 = no migration probe.
    std::uint64_t legacy_fingerprint = 0;
    Budget budget;
    std::size_t buckets = 16;  ///< index shard count used by compaction
  };

  /// Lookup/byte traffic of one store session, split by namespace:
  /// full-key (this study's own stream) vs shared (cross-study bucket)
  /// outcomes, record bytes decoded by probes, and segment bytes published
  /// by saves. Observability only — a warm store shifts these without
  /// changing any result.
  struct Metrics {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shared_hits = 0;
    std::uint64_t shared_misses = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_published = 0;
  };

  explicit EvalStore(Options opts);

  /// Full-key lookup: this study's own namespace, all sources (this run's
  /// inserts, index buckets, live segments).
  [[nodiscard]] std::optional<core::Evaluation> lookup(
      std::uint64_t design_hash) const;

  /// Cross-study lookup: any stream's record for this evaluation identity
  /// that carries replay parameters. Compacted index buckets only (see the
  /// class comment for why). The returned Evaluation's accuracy fields
  /// belong to the *producing* stream — callers must replay the
  /// Monte-Carlo draws (PerformanceEvaluator::replay_evaluation) before
  /// using it.
  [[nodiscard]] std::optional<core::Evaluation> lookup_shared(
      std::uint64_t design_hash) const;

  /// Records a fresh evaluation under this study's full key. No-op when the
  /// key was already inserted this session. Evaluations whose
  /// invalid_reason exceeds the record's fixed-width capacity are not
  /// persisted (the design re-evaluates deterministically next run).
  void insert(std::uint64_t design_hash, const core::Evaluation& ev);

  /// Publishes this session's new entries as one segment (O(new entries)),
  /// deletes a migrated legacy file, and — when a budget is configured and
  /// the store looks over it — runs a compaction pass. Returns false (and
  /// counts, and warns once) on I/O failure instead of throwing.
  bool save();

  [[nodiscard]] const std::string& directory() const { return opts_.directory; }
  /// Entries this instance holds in memory (session inserts + migrated
  /// legacy entries); disk-resident records are not counted here.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Records dropped by budget compactions this instance triggered.
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  /// Unusable files skipped at open (any number across segments, buckets
  /// and legacy files — the v1 "0 or 1 per instance" contract is gone,
  /// a store maps many files).
  [[nodiscard]] std::size_t skipped_files() const { return skipped_files_; }
  /// Records whose checksum failed during this instance's lookups.
  [[nodiscard]] std::size_t corrupt_records() const { return corrupt_records_; }
  /// save() calls that failed and were degraded to a warning.
  [[nodiscard]] std::size_t save_failures() const { return save_failures_; }
  /// This session's lookup/byte traffic (see Metrics).
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

 private:
  struct Entry {
    core::Evaluation evaluation;
    std::uint64_t seq = 0;
    bool published = false;  ///< already in a segment written by this save
  };
  struct MappedFile {
    /// Shared because mapped segment files are immutable once published:
    /// every EvalStore in the process that opens the same on-disk file
    /// (validated by inode identity — see open_segment_cached) holds one
    /// mmap instead of re-mapping per instance, which is what makes a
    /// resident worker's store effectively stay open across specs.
    std::shared_ptr<const SegmentView> view;
    bool is_bucket = false;
    std::size_t bucket_index = 0;
    std::size_t bucket_count = 1;
  };

  void open_directory();
  void import_legacy();
  [[nodiscard]] std::optional<core::Evaluation> probe_file(
      const MappedFile& file, std::uint64_t design_hash, bool shared) const;
  [[nodiscard]] bool over_budget_estimate() const;

  Options opts_;
  std::vector<MappedFile> files_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t next_seq_ = 0;
  bool dirty_ = false;
  std::string legacy_path_;  ///< non-empty: delete after a successful save
  std::size_t evictions_ = 0;
  std::size_t skipped_files_ = 0;
  mutable std::size_t corrupt_records_ = 0;
  std::size_t save_failures_ = 0;
  mutable Metrics metrics_;  ///< lookup() is const; counting is not a result
};

/// Integrity report of `lcda_run --store-fsck` / fsck().
struct FsckReport {
  std::size_t files = 0;        ///< segment/bucket files scanned
  std::size_t records = 0;      ///< records whose checksum verified
  std::size_t bad_files = 0;    ///< unusable files (header/size/magic)
  std::size_t bad_records = 0;  ///< checksum or sort-order violations
  [[nodiscard]] bool clean() const { return bad_files == 0 && bad_records == 0; }
};

/// Full-scan verification of every segment and index bucket under
/// `directory`: header integrity, per-record checksums, sort order.
/// Read-only; safe against live writers (a file that vanishes mid-scan is
/// skipped silently, not counted as damage).
[[nodiscard]] FsckReport fsck(const std::string& directory);

/// Result of one compaction pass.
struct CompactionReport {
  std::size_t input_files = 0;        ///< segments + old buckets merged
  std::size_t skipped_files = 0;      ///< unreadable inputs dropped whole
  std::size_t records_kept = 0;
  std::size_t duplicates_dropped = 0;  ///< same full key republished
  std::size_t corrupt_dropped = 0;     ///< failed per-record checksum
  std::size_t evicted = 0;             ///< dropped oldest-first for budget
};

/// Merges every segment and bucket under `directory` into `buckets` fresh
/// index buckets: drops corrupt records (skip-and-count), dedupes records
/// republished under the same full key (keeping the oldest sequence
/// number), and enforces `budget` oldest-first. Safe with live readers and
/// writers: new buckets are published atomically BEFORE the merged inputs
/// are unlinked, so every record stays reachable at every instant, and a
/// segment published concurrently with the pass simply survives to the
/// next one. Throws std::runtime_error only when the directory itself is
/// unusable (cannot create/publish the index).
CompactionReport compact_store(const std::string& directory, Budget budget,
                               std::size_t buckets);

}  // namespace lcda::store
