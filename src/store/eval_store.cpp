#include "lcda/store/eval_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "lcda/obs/metrics.h"
#include "lcda/obs/trace.h"
#include "lcda/store/legacy_json.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"

namespace lcda::store {

namespace fs = std::filesystem;

namespace {

/// One stderr warning per file path per process: a store maps many files
/// and several EvalStore instances per run (aggregate seed fan-out) map the
/// same ones, so an unusable file must not spam a warning per instance.
void warn_once(const std::string& path, const std::string& message) {
  static std::mutex mutex;
  static std::unordered_set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (warned.insert(path).second) {
    std::fprintf(stderr, "EvalStore: %s\n", message.c_str());
  }
}

std::uint64_t pair_shard(std::uint64_t eval_fp, std::uint64_t design_hash,
                         std::size_t buckets) {
  return util::hash_combine(eval_fp, design_hash) %
         static_cast<std::uint64_t>(buckets);
}

/// Process-wide cache of mmap'd segment views, keyed by path and validated
/// by inode identity. Only *live segment files* are cacheable: their names
/// embed pid+counter+content-hash, so a path is never reused for different
/// bytes and a (ino, size, mtime) match IS the file on disk. Index buckets
/// are explicitly NOT cached — compaction rename-replaces them at fixed
/// paths, and on filesystems that recycle inode numbers a later bucket
/// generation can land on a freed inode with equal size inside the same
/// timestamp tick, making (ino, size, mtime) collide across generations
/// and the cache serve a pre-publication view whose records have since
/// moved out of the (now unlinked) input segments. This is what keeps a
/// resident worker's store effectively open across specs (and across the
/// per-seed EvalStore instances of one aggregate run): the O(files)
/// directory listing still happens per open, so the visible file set and
/// every counter match a cold open exactly, but re-mapping and re-reading
/// segment headers does not (buckets are few — one mmap each per open).
///
/// A stat that fails, or a view that fails to open, evicts the path. The
/// cache is capped; overflowing it just drops warm state (correctness
/// never depends on a cache hit). Thread-safe: several worker threads may
/// construct EvalStores concurrently, and SegmentView is read-only.
class SegmentViewCache {
 public:
  /// Mirrors SegmentView::open's contract: nullptr with empty `*error`
  /// means "file vanished" (not damage), nullptr with a message means an
  /// unusable file.
  std::shared_ptr<const SegmentView> open(const std::string& path,
                                          std::string* error,
                                          bool cacheable) {
    if (!cacheable) {
      std::optional<SegmentView> view = SegmentView::open(path, error);
      if (!view) return nullptr;
      return std::make_shared<const SegmentView>(std::move(*view));
    }
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      cache_.erase(path);
      if (error != nullptr) error->clear();  // vanished, like a lost race
      return nullptr;
    }
    const Identity id{st.st_ino, static_cast<std::uint64_t>(st.st_size),
                      static_cast<std::int64_t>(st.st_mtim.tv_sec),
                      static_cast<std::int64_t>(st.st_mtim.tv_nsec)};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = cache_.find(path);
      if (it != cache_.end() && it->second.identity == id) {
        if (error != nullptr) error->clear();
        return it->second.view;
      }
    }
    std::optional<SegmentView> view = SegmentView::open(path, error);
    if (!view) {
      std::lock_guard<std::mutex> lock(mutex_);
      cache_.erase(path);
      return nullptr;
    }
    auto shared = std::make_shared<const SegmentView>(std::move(*view));
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.size() >= kMaxCached && cache_.count(path) == 0) {
      cache_.clear();  // crude, rare, and only costs warmth
    }
    cache_[path] = CachedView{id, shared};
    return shared;
  }

 private:
  struct Identity {
    std::uint64_t ino = 0;
    std::uint64_t size = 0;
    std::int64_t mtime_s = 0;
    std::int64_t mtime_ns = 0;
    bool operator==(const Identity& o) const {
      return ino == o.ino && size == o.size && mtime_s == o.mtime_s &&
             mtime_ns == o.mtime_ns;
    }
  };
  struct CachedView {
    Identity identity;
    std::shared_ptr<const SegmentView> view;
  };

  static constexpr std::size_t kMaxCached = 1024;
  std::mutex mutex_;
  std::unordered_map<std::string, CachedView> cache_;
};

std::shared_ptr<const SegmentView> open_segment_cached(const std::string& path,
                                                       std::string* error,
                                                       bool cacheable) {
  static SegmentViewCache cache;
  return cache.open(path, error, cacheable);
}

}  // namespace

EvalStore::EvalStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.directory.empty()) {
    throw std::invalid_argument("EvalStore: empty directory");
  }
  if (opts_.buckets == 0) opts_.buckets = 1;
  open_directory();
  import_legacy();
}

void EvalStore::open_directory() {
  obs::Span span("store.open");
  // Index buckets first, then live segments: lookups walk files_ in order,
  // so the compacted (stable) tier is preferred when a record exists in
  // both. Either copy is byte-identical, the order just keeps probes
  // touching the fewest files.
  //
  // A file that vanishes between the listing and its open means a
  // concurrent compaction published new buckets and unlinked its inputs
  // mid-scan — the records are safe, but only in buckets newer than the
  // ones this scan already mapped. Restart the whole scan (listing
  // included) so buckets and segments come from one post-publication
  // generation; a handful of attempts always suffices because each retry
  // needs a *fresh* compaction pass inside a microsecond window.
  const std::uint64_t entry_next_seq = next_seq_;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const bool last_attempt = attempt == 3;
    files_.clear();
    next_seq_ = entry_next_seq;
    std::vector<std::string> paths =
        list_segment_files(opts_.directory + "/index");
    const std::size_t index_files = paths.size();
    for (const std::string& path :
         list_segment_files(opts_.directory + "/segments")) {
      paths.push_back(path);
    }
    bool vanished = false;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      // Buckets live at fixed rename-replaced paths, so their views must
      // be opened fresh (see SegmentViewCache); immutable segments are
      // served warm.
      const bool cacheable = p >= index_files;
      std::string error;
      std::shared_ptr<const SegmentView> view =
          open_segment_cached(paths[p], &error, cacheable);
      if (!view) {
        if (!error.empty()) {
          // Unusable file: skip it (counted, warned once per process) and
          // run cold on whatever it held instead of aborting — a
          // distributed shard retry must be able to get past a bad file,
          // and the next --store-compact drops it.
          ++skipped_files_;
          warn_once(paths[p], "skipping unusable store file: " + error);
        } else if (!last_attempt) {
          // "" means the file vanished under a concurrent compaction,
          // which is not damage — rescan from the listing.
          vanished = true;
          break;
        }
        continue;
      }
      MappedFile file;
      file.bucket_count = 1;
      if (p < index_files) {
        const std::string name = fs::path(paths[p]).filename().string();
        file.is_bucket =
            parse_bucket_name(name, &file.bucket_index, &file.bucket_count);
      }
      next_seq_ = std::max(next_seq_, view->max_seq() + 1);
      file.view = std::move(view);
      files_.push_back(std::move(file));
    }
    if (!vanished) return;
  }
}

void EvalStore::import_legacy() {
  if (opts_.legacy_fingerprint == 0) return;
  const std::string path =
      legacy_cache_path(opts_.directory, opts_.legacy_fingerprint);
  std::ifstream in(path);
  if (!in) return;  // nothing to migrate
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<LegacyEntry> imported;
  try {
    imported = parse_legacy_cache(buffer.str(), opts_.legacy_fingerprint);
  } catch (const std::exception& e) {
    ++skipped_files_;
    warn_once(path, "skipping unusable legacy cache file " + path + ": " +
                        e.what());
    return;
  }
  // v1 sequence numbers are per-file; offsetting them past everything the
  // store has seen preserves their relative age without colliding with
  // store-wide sequences. The entries enter unpublished, so the next save
  // republishes them as a segment and then deletes the v1 file — the
  // migration is complete after one warm run.
  std::uint64_t max_seq = next_seq_;
  for (LegacyEntry& e : imported) {
    Entry entry;
    entry.evaluation = std::move(e.evaluation);
    entry.seq = next_seq_ + e.seq;
    max_seq = std::max(max_seq, entry.seq);
    if (entries_.emplace(e.design_hash, std::move(entry)).second) {
      dirty_ = true;
    }
  }
  next_seq_ = max_seq + 1;
  legacy_path_ = path;
}

std::optional<core::Evaluation> EvalStore::probe_file(
    const MappedFile& file, std::uint64_t design_hash, bool shared) const {
  if (file.is_bucket &&
      pair_shard(opts_.eval_fingerprint, design_hash, file.bucket_count) !=
          file.bucket_index) {
    return std::nullopt;
  }
  const SegmentView& view = *file.view;
  for (std::size_t i = view.lower_bound(opts_.eval_fingerprint, design_hash);
       view.matches_pair(i, opts_.eval_fingerprint, design_hash); ++i) {
    if (!record_checksum_ok(view.record(i))) {
      // Damaged record inside a healthy file: skip it (counted) and keep
      // probing — worst case this key re-evaluates cold. Never fatal.
      ++corrupt_records_;
      continue;
    }
    metrics_.bytes_read += kRecordSize;
    StoreRecord record = decode_record(view.record(i));
    if (shared) {
      if (record.evaluation.has_replay_params) {
        return std::move(record.evaluation);
      }
    } else if (record.stream_fingerprint == opts_.stream_fingerprint) {
      return std::move(record.evaluation);
    }
  }
  return std::nullopt;
}

std::optional<core::Evaluation> EvalStore::lookup(
    std::uint64_t design_hash) const {
  obs::Span span("store.lookup");
  if (const auto it = entries_.find(design_hash); it != entries_.end()) {
    ++metrics_.hits;
    return it->second.evaluation;
  }
  for (const MappedFile& file : files_) {
    if (auto hit = probe_file(file, design_hash, /*shared=*/false)) {
      ++metrics_.hits;
      return hit;
    }
  }
  ++metrics_.misses;
  return std::nullopt;
}

std::optional<core::Evaluation> EvalStore::lookup_shared(
    std::uint64_t design_hash) const {
  obs::Span span("store.lookup");
  // Compacted buckets only — never live segments, never this session's
  // entries. Buckets change only under an explicit --store-compact, so
  // whether a sibling study's record is visible here cannot depend on
  // concurrent-process timing, and shared-hit counters stay deterministic
  // (single-process == distributed, run-to-run).
  for (const MappedFile& file : files_) {
    if (!file.is_bucket) continue;
    if (auto hit = probe_file(file, design_hash, /*shared=*/true)) {
      ++metrics_.shared_hits;
      return hit;
    }
  }
  ++metrics_.shared_misses;
  return std::nullopt;
}

void EvalStore::insert(std::uint64_t design_hash, const core::Evaluation& ev) {
  if (ev.cost.invalid_reason.size() > kMaxReason) return;
  if (entries_.emplace(design_hash, Entry{ev, next_seq_, false}).second) {
    ++next_seq_;
    dirty_ = true;
  }
}

bool EvalStore::over_budget_estimate() const {
  if (opts_.budget.max_entries == 0 && opts_.budget.max_bytes == 0) {
    return false;
  }
  // Upper-bound estimate from open-time file headers plus this session's
  // published entries; duplicates across segments inflate it, which only
  // makes compaction run a pass it would otherwise skip — never miss one.
  std::size_t records = 0, bytes = 0;
  for (const MappedFile& file : files_) {
    records += file.view->count();
    bytes += kHeaderSize + file.view->count() * kRecordSize;
  }
  std::size_t published = 0;
  for (const auto& [hash, entry] : entries_) {
    if (entry.published) ++published;
  }
  records += published;
  bytes += published * kRecordSize + (published > 0 ? kHeaderSize : 0);
  return (opts_.budget.max_entries > 0 && records > opts_.budget.max_entries) ||
         (opts_.budget.max_bytes > 0 && bytes > opts_.budget.max_bytes);
}

bool EvalStore::save() {
  obs::Span span("store.save");
  // Save-latency histogram: once per run, so the per-call registry lock
  // and clock reads are nowhere near a hot path. Inert while metrics are
  // off (the clock is not even read).
  obs::Histogram save_us = obs::Registry::instance().histogram("store.save_us");
  std::int64_t t0_us = 0;
  if (save_us.live()) {
    t0_us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
  }
  const auto observe_save = [&] {
    if (t0_us != 0) {
      save_us.observe(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count() -
                      t0_us);
    }
  };
  std::vector<StoreRecord> fresh;
  for (const auto& [hash, entry] : entries_) {
    if (entry.published) continue;
    StoreRecord record;
    record.eval_fingerprint = opts_.eval_fingerprint;
    record.design_hash = hash;
    record.stream_fingerprint = opts_.stream_fingerprint;
    record.seq = entry.seq;
    record.evaluation = entry.evaluation;
    if (record_encodable(record)) fresh.push_back(std::move(record));
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const StoreRecord& a, const StoreRecord& b) {
              return a.key_less(b);
            });

  if (!fresh.empty()) {
    try {
      fs::create_directories(opts_.directory + "/segments");
      const std::vector<std::uint8_t> bytes = serialize_segment(fresh);
      const std::uint64_t content_hash = util::fnv1a64(std::string_view(
          reinterpret_cast<const char*>(bytes.data()), bytes.size()));
      static std::atomic<unsigned long> segment_counter{0};
      const std::string path =
          opts_.directory + "/segments/seg-" +
          std::to_string(static_cast<long>(::getpid())) + "-" +
          std::to_string(segment_counter.fetch_add(1)) + "-" +
          util::hex_u64(content_hash) + ".seg";
      publish_file(path, bytes);
      metrics_.bytes_published += bytes.size();
    } catch (const std::exception& e) {
      // A study's results are already in hand by the time it saves; an I/O
      // failure here degrades to a counted warning (mirroring the
      // load-side skip-and-count rule) instead of killing the run. The
      // entries stay unpublished, so a later save retries.
      ++save_failures_;
      warn_once(opts_.directory + "/save",
                std::string("save failed (cache not persisted): ") + e.what());
      observe_save();
      return false;
    }
    for (auto& [hash, entry] : entries_) entry.published = true;
    dirty_ = false;
  }

  if (!legacy_path_.empty()) {
    std::error_code ec;
    fs::remove(legacy_path_, ec);  // best-effort; reimported next run if not
    legacy_path_.clear();
  }

  if (over_budget_estimate()) {
    try {
      const CompactionReport report =
          compact_store(opts_.directory, opts_.budget, opts_.buckets);
      evictions_ += report.evicted;
    } catch (const std::exception& e) {
      ++save_failures_;
      warn_once(opts_.directory + "/compact",
                std::string("budget compaction failed: ") + e.what());
      observe_save();
      return false;
    }
  }
  observe_save();
  return true;
}

}  // namespace lcda::store
