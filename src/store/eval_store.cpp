#include "lcda/store/eval_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "lcda/store/legacy_json.h"
#include "lcda/util/rng.h"
#include "lcda/util/strings.h"

namespace lcda::store {

namespace fs = std::filesystem;

namespace {

/// One stderr warning per file path per process: a store maps many files
/// and several EvalStore instances per run (aggregate seed fan-out) map the
/// same ones, so an unusable file must not spam a warning per instance.
void warn_once(const std::string& path, const std::string& message) {
  static std::mutex mutex;
  static std::unordered_set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (warned.insert(path).second) {
    std::fprintf(stderr, "EvalStore: %s\n", message.c_str());
  }
}

std::uint64_t pair_shard(std::uint64_t eval_fp, std::uint64_t design_hash,
                         std::size_t buckets) {
  return util::hash_combine(eval_fp, design_hash) %
         static_cast<std::uint64_t>(buckets);
}

}  // namespace

EvalStore::EvalStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.directory.empty()) {
    throw std::invalid_argument("EvalStore: empty directory");
  }
  if (opts_.buckets == 0) opts_.buckets = 1;
  open_directory();
  import_legacy();
}

void EvalStore::open_directory() {
  // Index buckets first, then live segments: lookups walk files_ in order,
  // so the compacted (stable) tier is preferred when a record exists in
  // both. Either copy is byte-identical, the order just keeps probes
  // touching the fewest files.
  std::vector<std::string> paths = list_segment_files(opts_.directory + "/index");
  const std::size_t index_files = paths.size();
  for (const std::string& path : list_segment_files(opts_.directory + "/segments")) {
    paths.push_back(path);
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    std::string error;
    std::optional<SegmentView> view = SegmentView::open(paths[p], &error);
    if (!view) {
      if (!error.empty()) {
        // Unusable file: skip it (counted, warned once per process) and run
        // cold on whatever it held instead of aborting — a distributed
        // shard retry must be able to get past a bad file, and the next
        // --store-compact drops it. "" means the file vanished under a
        // concurrent compaction, which is not damage.
        ++skipped_files_;
        warn_once(paths[p], "skipping unusable store file: " + error);
      }
      continue;
    }
    MappedFile file;
    file.bucket_count = 1;
    if (p < index_files) {
      const std::string name = fs::path(paths[p]).filename().string();
      file.is_bucket =
          parse_bucket_name(name, &file.bucket_index, &file.bucket_count);
    }
    next_seq_ = std::max(next_seq_, view->max_seq() + 1);
    file.view = std::move(*view);
    files_.push_back(std::move(file));
  }
}

void EvalStore::import_legacy() {
  if (opts_.legacy_fingerprint == 0) return;
  const std::string path =
      legacy_cache_path(opts_.directory, opts_.legacy_fingerprint);
  std::ifstream in(path);
  if (!in) return;  // nothing to migrate
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<LegacyEntry> imported;
  try {
    imported = parse_legacy_cache(buffer.str(), opts_.legacy_fingerprint);
  } catch (const std::exception& e) {
    ++skipped_files_;
    warn_once(path, "skipping unusable legacy cache file " + path + ": " +
                        e.what());
    return;
  }
  // v1 sequence numbers are per-file; offsetting them past everything the
  // store has seen preserves their relative age without colliding with
  // store-wide sequences. The entries enter unpublished, so the next save
  // republishes them as a segment and then deletes the v1 file — the
  // migration is complete after one warm run.
  std::uint64_t max_seq = next_seq_;
  for (LegacyEntry& e : imported) {
    Entry entry;
    entry.evaluation = std::move(e.evaluation);
    entry.seq = next_seq_ + e.seq;
    max_seq = std::max(max_seq, entry.seq);
    if (entries_.emplace(e.design_hash, std::move(entry)).second) {
      dirty_ = true;
    }
  }
  next_seq_ = max_seq + 1;
  legacy_path_ = path;
}

std::optional<core::Evaluation> EvalStore::probe_file(
    const MappedFile& file, std::uint64_t design_hash, bool shared) const {
  if (file.is_bucket &&
      pair_shard(opts_.eval_fingerprint, design_hash, file.bucket_count) !=
          file.bucket_index) {
    return std::nullopt;
  }
  const SegmentView& view = file.view;
  for (std::size_t i = view.lower_bound(opts_.eval_fingerprint, design_hash);
       view.matches_pair(i, opts_.eval_fingerprint, design_hash); ++i) {
    if (!record_checksum_ok(view.record(i))) {
      // Damaged record inside a healthy file: skip it (counted) and keep
      // probing — worst case this key re-evaluates cold. Never fatal.
      ++corrupt_records_;
      continue;
    }
    StoreRecord record = decode_record(view.record(i));
    if (shared) {
      if (record.evaluation.has_replay_params) {
        return std::move(record.evaluation);
      }
    } else if (record.stream_fingerprint == opts_.stream_fingerprint) {
      return std::move(record.evaluation);
    }
  }
  return std::nullopt;
}

std::optional<core::Evaluation> EvalStore::lookup(
    std::uint64_t design_hash) const {
  if (const auto it = entries_.find(design_hash); it != entries_.end()) {
    return it->second.evaluation;
  }
  for (const MappedFile& file : files_) {
    if (auto hit = probe_file(file, design_hash, /*shared=*/false)) return hit;
  }
  return std::nullopt;
}

std::optional<core::Evaluation> EvalStore::lookup_shared(
    std::uint64_t design_hash) const {
  // Compacted buckets only — never live segments, never this session's
  // entries. Buckets change only under an explicit --store-compact, so
  // whether a sibling study's record is visible here cannot depend on
  // concurrent-process timing, and shared-hit counters stay deterministic
  // (single-process == distributed, run-to-run).
  for (const MappedFile& file : files_) {
    if (!file.is_bucket) continue;
    if (auto hit = probe_file(file, design_hash, /*shared=*/true)) return hit;
  }
  return std::nullopt;
}

void EvalStore::insert(std::uint64_t design_hash, const core::Evaluation& ev) {
  if (ev.cost.invalid_reason.size() > kMaxReason) return;
  if (entries_.emplace(design_hash, Entry{ev, next_seq_, false}).second) {
    ++next_seq_;
    dirty_ = true;
  }
}

bool EvalStore::over_budget_estimate() const {
  if (opts_.budget.max_entries == 0 && opts_.budget.max_bytes == 0) {
    return false;
  }
  // Upper-bound estimate from open-time file headers plus this session's
  // published entries; duplicates across segments inflate it, which only
  // makes compaction run a pass it would otherwise skip — never miss one.
  std::size_t records = 0, bytes = 0;
  for (const MappedFile& file : files_) {
    records += file.view.count();
    bytes += kHeaderSize + file.view.count() * kRecordSize;
  }
  std::size_t published = 0;
  for (const auto& [hash, entry] : entries_) {
    if (entry.published) ++published;
  }
  records += published;
  bytes += published * kRecordSize + (published > 0 ? kHeaderSize : 0);
  return (opts_.budget.max_entries > 0 && records > opts_.budget.max_entries) ||
         (opts_.budget.max_bytes > 0 && bytes > opts_.budget.max_bytes);
}

bool EvalStore::save() {
  std::vector<StoreRecord> fresh;
  for (const auto& [hash, entry] : entries_) {
    if (entry.published) continue;
    StoreRecord record;
    record.eval_fingerprint = opts_.eval_fingerprint;
    record.design_hash = hash;
    record.stream_fingerprint = opts_.stream_fingerprint;
    record.seq = entry.seq;
    record.evaluation = entry.evaluation;
    if (record_encodable(record)) fresh.push_back(std::move(record));
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const StoreRecord& a, const StoreRecord& b) {
              return a.key_less(b);
            });

  if (!fresh.empty()) {
    try {
      fs::create_directories(opts_.directory + "/segments");
      const std::vector<std::uint8_t> bytes = serialize_segment(fresh);
      const std::uint64_t content_hash = util::fnv1a64(std::string_view(
          reinterpret_cast<const char*>(bytes.data()), bytes.size()));
      static std::atomic<unsigned long> segment_counter{0};
      const std::string path =
          opts_.directory + "/segments/seg-" +
          std::to_string(static_cast<long>(::getpid())) + "-" +
          std::to_string(segment_counter.fetch_add(1)) + "-" +
          util::hex_u64(content_hash) + ".seg";
      publish_file(path, bytes);
    } catch (const std::exception& e) {
      // A study's results are already in hand by the time it saves; an I/O
      // failure here degrades to a counted warning (mirroring the
      // load-side skip-and-count rule) instead of killing the run. The
      // entries stay unpublished, so a later save retries.
      ++save_failures_;
      warn_once(opts_.directory + "/save",
                std::string("save failed (cache not persisted): ") + e.what());
      return false;
    }
    for (auto& [hash, entry] : entries_) entry.published = true;
    dirty_ = false;
  }

  if (!legacy_path_.empty()) {
    std::error_code ec;
    fs::remove(legacy_path_, ec);  // best-effort; reimported next run if not
    legacy_path_.clear();
  }

  if (over_budget_estimate()) {
    try {
      const CompactionReport report =
          compact_store(opts_.directory, opts_.budget, opts_.buckets);
      evictions_ += report.evicted;
    } catch (const std::exception& e) {
      ++save_failures_;
      warn_once(opts_.directory + "/compact",
                std::string("budget compaction failed: ") + e.what());
      return false;
    }
  }
  return true;
}

}  // namespace lcda::store
